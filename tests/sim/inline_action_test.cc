/**
 * @file
 * Unit tests for InlineAction: inline vs heap storage selection,
 * move semantics, lifetime management, and invocation.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "sim/inline_action.hh"

namespace vcp {
namespace {

TEST(InlineActionTest, DefaultIsEmpty)
{
    InlineAction a;
    EXPECT_FALSE(a);
    EXPECT_FALSE(a.heapAllocated());
}

TEST(InlineActionTest, SmallCaptureStaysInline)
{
    int hits = 0;
    InlineAction a([&hits] { ++hits; });
    EXPECT_TRUE(a);
    EXPECT_FALSE(a.heapAllocated());
    a();
    a();
    EXPECT_EQ(hits, 2);
}

TEST(InlineActionTest, CaptureAtTheSizeLimitStaysInline)
{
    // A lambda capturing exactly kInlineSize bytes must not spill...
    std::array<char, InlineAction::kInlineSize> payload{};
    payload[0] = 42;
    static char sink = 0;
    InlineAction at_limit([payload] { sink = payload[0]; });
    EXPECT_FALSE(at_limit.heapAllocated());
    at_limit();
    EXPECT_EQ(sink, 42);

    // ...and one byte more must.
    std::array<char, InlineAction::kInlineSize + 1> over{};
    InlineAction past_limit([over] { sink = over[0]; });
    EXPECT_TRUE(past_limit.heapAllocated());
}

TEST(InlineActionTest, LargeCaptureFallsBackToHeap)
{
    std::array<char, 128> big{};
    big[5] = 9;
    char seen = 0;
    InlineAction a([big, &seen] { seen = big[5]; });
    EXPECT_TRUE(a);
    EXPECT_TRUE(a.heapAllocated());
    a();
    EXPECT_EQ(seen, 9);
}

TEST(InlineActionTest, MoveTransfersInlineCallable)
{
    int hits = 0;
    InlineAction a([&hits] { ++hits; });
    InlineAction b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): tested state
    EXPECT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);
}

TEST(InlineActionTest, MoveTransfersHeapCallable)
{
    std::array<char, 128> big{};
    big[0] = 3;
    char seen = 0;
    InlineAction a([big, &seen] { seen = big[0]; });
    InlineAction b(std::move(a));
    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): tested state
    EXPECT_TRUE(b);
    EXPECT_TRUE(b.heapAllocated());
    b();
    EXPECT_EQ(seen, 3);
}

TEST(InlineActionTest, MoveAssignDestroysPreviousCallable)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> alive = token;
    InlineAction a([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(alive.expired());
    a = InlineAction([] {});
    EXPECT_TRUE(alive.expired());
}

TEST(InlineActionTest, ResetDestroysCallable)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> alive = token;
    InlineAction a([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(alive.expired());
    a.reset();
    EXPECT_FALSE(a);
    EXPECT_TRUE(alive.expired());
}

TEST(InlineActionTest, DestructorReleasesHeapCallable)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> alive = token;
    {
        std::array<char, 128> big{};
        InlineAction a([token, big] { (void)*token; (void)big; });
        token.reset();
        EXPECT_TRUE(a.heapAllocated());
        EXPECT_FALSE(alive.expired());
    }
    EXPECT_TRUE(alive.expired());
}

TEST(InlineActionTest, MovedFromIsReusable)
{
    int hits = 0;
    InlineAction a([&hits] { ++hits; });
    InlineAction b(std::move(a));
    a = InlineAction([&hits] { hits += 10; });
    a();
    b();
    EXPECT_EQ(hits, 11);
}

TEST(InlineActionTest, MutableLambdaKeepsStateAcrossCalls)
{
    int seen = 0;
    InlineAction a([n = 0, &seen]() mutable { seen = ++n; });
    a();
    a();
    a();
    EXPECT_EQ(seen, 3);
}

} // namespace
} // namespace vcp
