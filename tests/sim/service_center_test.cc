/**
 * @file
 * Tests for the c-server FIFO service center: queueing order,
 * concurrency limits, token (acquire/release) semantics, wait-time
 * accounting, and utilization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.hh"
#include "sim/service_center.hh"

namespace vcp {
namespace {

TEST(ServiceCenterTest, SingleServerSerializes)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    std::vector<SimTime> done_times;
    for (int i = 0; i < 3; ++i)
        sc.submit(seconds(1), [&] { done_times.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done_times.size(), 3u);
    EXPECT_EQ(done_times[0], seconds(1));
    EXPECT_EQ(done_times[1], seconds(2));
    EXPECT_EQ(done_times[2], seconds(3));
    EXPECT_EQ(sc.completed(), 3u);
}

TEST(ServiceCenterTest, MultipleServersRunInParallel)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 3);
    std::vector<SimTime> done_times;
    for (int i = 0; i < 3; ++i)
        sc.submit(seconds(1), [&] { done_times.push_back(sim.now()); });
    sim.run();
    for (SimTime t : done_times)
        EXPECT_EQ(t, seconds(1));
}

TEST(ServiceCenterTest, FourthJobWaitsBehindThree)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 3);
    SimTime fourth_done = 0;
    for (int i = 0; i < 3; ++i)
        sc.submit(seconds(1), [] {});
    sc.submit(seconds(1), [&] { fourth_done = sim.now(); });
    EXPECT_EQ(sc.queueLength(), 1u);
    EXPECT_EQ(sc.busyServers(), 3);
    sim.run();
    EXPECT_EQ(fourth_done, seconds(2));
}

TEST(ServiceCenterTest, FifoOrder)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sc.submit(msec(10), [&order, i] { order.push_back(i); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ServiceCenterTest, AcquireHoldsAcrossAsyncWork)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    SimTime second_granted = -1;
    sc.acquire([&] {
        // Hold the token across unrelated async work.
        sim.schedule(seconds(5), [&] { sc.release(); });
    });
    sc.acquire([&] {
        second_granted = sim.now();
        sc.release();
    });
    EXPECT_EQ(sc.busyServers(), 1);
    EXPECT_EQ(sc.queueLength(), 1u);
    sim.run();
    EXPECT_EQ(second_granted, seconds(5));
}

TEST(ServiceCenterTest, ReleaseWithoutAcquirePanics)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    EXPECT_THROW(sc.release(), PanicError);
}

TEST(ServiceCenterTest, NegativeServiceTimePanics)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    EXPECT_THROW(sc.submit(-1, [] {}), PanicError);
}

TEST(ServiceCenterTest, ZeroServersRejected)
{
    Simulator sim;
    EXPECT_THROW(ServiceCenter(sim, "t", 0), PanicError);
}

TEST(ServiceCenterTest, WaitTimesMeasured)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    sc.submit(seconds(2), [] {}); // waits 0
    sc.submit(seconds(1), [] {}); // waits 2 s
    sim.run();
    EXPECT_EQ(sc.waitTimes().count(), 2u);
    EXPECT_DOUBLE_EQ(sc.waitTimes().min(), 0.0);
    EXPECT_DOUBLE_EQ(sc.waitTimes().max(),
                     static_cast<double>(seconds(2)));
}

TEST(ServiceCenterTest, UtilizationOfAlwaysBusyServerIsOne)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    for (int i = 0; i < 10; ++i)
        sc.submit(seconds(1), [] {});
    sim.run();
    EXPECT_NEAR(sc.utilization(), 1.0, 1e-9);
}

TEST(ServiceCenterTest, UtilizationHalfWhenIdleHalfTheTime)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    sc.submit(seconds(1), [] {});
    sim.run();               // now = 1 s, busy the whole time
    sim.runUntil(seconds(2)); // idle second
    EXPECT_NEAR(sc.utilization(), 0.5, 1e-9);
}

TEST(ServiceCenterTest, TwoServersHalfBusy)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 2);
    sc.submit(seconds(4), [] {});
    sim.run();
    EXPECT_NEAR(sc.utilization(), 0.5, 1e-9);
}

TEST(ServiceCenterTest, CompletionCallbackCanResubmit)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 1);
    int chain = 0;
    std::function<void()> next = [&]() {
        if (++chain < 5)
            sc.submit(msec(1), next);
    };
    sc.submit(msec(1), next);
    sim.run();
    EXPECT_EQ(chain, 5);
    EXPECT_EQ(sc.completed(), 5u);
}

TEST(ServiceCenterTest, ManyJobsConservation)
{
    Simulator sim;
    ServiceCenter sc(sim, "t", 4);
    int done = 0;
    for (int i = 0; i < 500; ++i)
        sc.submit(msec(i % 17 + 1), [&] { ++done; });
    sim.run();
    EXPECT_EQ(done, 500);
    EXPECT_EQ(sc.busyServers(), 0);
    EXPECT_EQ(sc.queueLength(), 0u);
}

} // namespace
} // namespace vcp
