/**
 * @file
 * Unit tests for the discrete-event kernel: clock advancement,
 * scheduling semantics, stop/runUntil behaviour, cancellation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace vcp {
namespace {

TEST(SimulatorTest, ClockStartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.eventsProcessed(), 0u);
}

TEST(SimulatorTest, ScheduleAdvancesClock)
{
    Simulator sim;
    SimTime seen = -1;
    sim.schedule(msec(5), [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, msec(5));
    EXPECT_EQ(sim.now(), msec(5));
    EXPECT_EQ(sim.eventsProcessed(), 1u);
}

TEST(SimulatorTest, NestedSchedulingRunsRelativeToFiringTime)
{
    Simulator sim;
    SimTime inner_time = -1;
    sim.schedule(100, [&] {
        sim.schedule(50, [&] { inner_time = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(inner_time, 150);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(10, [&] {
        order.push_back(1);
        sim.schedule(0, [&] { order.push_back(2); });
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sim.now(), 10);
}

TEST(SimulatorTest, NegativeDelayPanics)
{
    Simulator sim;
    EXPECT_THROW(sim.schedule(-1, [] {}), PanicError);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    SimTime seen = -1;
    sim.scheduleAt(seconds(3), [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, seconds(3));
}

TEST(SimulatorTest, ScheduleAtPastPanics)
{
    Simulator sim;
    sim.schedule(100, [&] {
        EXPECT_THROW(sim.scheduleAt(50, [] {}), PanicError);
    });
    sim.run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndSetsClock)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(100, [&] { ++fired; });
    sim.schedule(200, [&] { ++fired; });
    sim.schedule(300, [&] { ++fired; });
    sim.runUntil(200);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 200);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, RunUntilWithNoEventsAdvancesClock)
{
    Simulator sim;
    sim.runUntil(seconds(10));
    EXPECT_EQ(sim.now(), seconds(10));
}

TEST(SimulatorTest, StopEndsRunEarly)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(20, [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    // A new run resumes.
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution)
{
    Simulator sim;
    bool fired = false;
    EventId id = sim.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RngIsDeterministicPerSeed)
{
    Simulator a(123), b(123), c(456);
    double va = a.rng().uniform();
    double vb = b.rng().uniform();
    double vc = c.rng().uniform();
    EXPECT_DOUBLE_EQ(va, vb);
    EXPECT_NE(va, vc);
}

TEST(SimulatorTest, ManyEventsAllRun)
{
    Simulator sim;
    int count = 0;
    for (int i = 0; i < 10000; ++i)
        sim.schedule(i, [&] { ++count; });
    sim.run();
    EXPECT_EQ(count, 10000);
    EXPECT_EQ(sim.eventsProcessed(), 10000u);
}

} // namespace
} // namespace vcp
