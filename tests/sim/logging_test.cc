/**
 * @file
 * Severity-filter and log-sink tests: each level keeps exactly the
 * severities at or below it, the pluggable sink sees the filtered
 * stream (with component tags), --log-level parsing is strict, and
 * the legacy quiet switch maps onto the filter.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/logging.hh"

namespace vcp {
namespace {

/** Captures filtered log lines; restores defaults on destruction. */
struct SinkCapture
{
    struct Line
    {
        LogLevel level;
        std::string component;
        std::string msg;
    };
    std::vector<Line> lines;

    SinkCapture()
    {
        setLogSink([this](LogLevel lvl, const char *component,
                          const std::string &msg) {
            lines.push_back(
                {lvl, component ? component : "", msg});
        });
    }

    ~SinkCapture()
    {
        setLogSink({});
        setLogLevel(LogLevel::Info);
    }
};

TEST(Logging, InfoLevelKeepsWarningsAndInforms)
{
    SinkCapture cap;
    setLogLevel(LogLevel::Info);
    warn("w %d", 1);
    inform("i %d", 2);
    ASSERT_EQ(cap.lines.size(), 2u);
    EXPECT_EQ(cap.lines[0].level, LogLevel::Warn);
    EXPECT_EQ(cap.lines[0].msg, "w 1");
    EXPECT_EQ(cap.lines[1].level, LogLevel::Info);
    EXPECT_EQ(cap.lines[1].msg, "i 2");
}

TEST(Logging, WarnLevelDropsInforms)
{
    SinkCapture cap;
    setLogLevel(LogLevel::Warn);
    inform("dropped");
    warn("kept");
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0].level, LogLevel::Warn);
    EXPECT_EQ(cap.lines[0].msg, "kept");
}

TEST(Logging, SilentLevelDropsEverything)
{
    SinkCapture cap;
    setLogLevel(LogLevel::Silent);
    warn("dropped");
    inform("dropped");
    warnTagged("comp", "dropped");
    EXPECT_TRUE(cap.lines.empty());
}

TEST(Logging, SinkSeesComponentTags)
{
    SinkCapture cap;
    setLogLevel(LogLevel::Info);
    warnTagged("scheduler", "queue depth %d", 9);
    informTagged("fabric", "link up");
    ASSERT_EQ(cap.lines.size(), 2u);
    EXPECT_EQ(cap.lines[0].component, "scheduler");
    EXPECT_EQ(cap.lines[0].msg, "queue depth 9");
    EXPECT_EQ(cap.lines[1].component, "fabric");
}

TEST(Logging, QuietShimMapsOntoSeverityFilter)
{
    setLogQuiet(true);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    EXPECT_TRUE(logQuiet());
    setLogQuiet(false);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    EXPECT_FALSE(logQuiet());
}

TEST(Logging, ParseAcceptsNamesAndStrictIntegers)
{
    LogLevel l = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("silent", l));
    EXPECT_EQ(l, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("quiet", l));
    EXPECT_EQ(l, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("warn", l));
    EXPECT_EQ(l, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", l));
    EXPECT_EQ(l, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("0", l));
    EXPECT_EQ(l, LogLevel::Silent);
    EXPECT_TRUE(parseLogLevel("2", l));
    EXPECT_EQ(l, LogLevel::Info);
}

TEST(Logging, ParseRejectsGarbageWithoutTouchingOutput)
{
    LogLevel l = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("loud", l));
    EXPECT_FALSE(parseLogLevel("3", l));
    EXPECT_FALSE(parseLogLevel("-1", l));
    EXPECT_FALSE(parseLogLevel("1x", l)); // strict: no trailing junk
    EXPECT_FALSE(parseLogLevel("", l));
    EXPECT_EQ(l, LogLevel::Warn);
}

TEST(Logging, LevelNamesRoundTrip)
{
    for (LogLevel l : {LogLevel::Silent, LogLevel::Warn,
                       LogLevel::Info}) {
        LogLevel parsed = LogLevel::Info;
        EXPECT_TRUE(parseLogLevel(logLevelName(l), parsed));
        EXPECT_EQ(parsed, l);
    }
}

} // namespace
} // namespace vcp
