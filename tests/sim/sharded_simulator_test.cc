#include "sim/sharded_simulator.hh"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace vcp {
namespace {

/** One executed event, as observed by the test workload. */
struct Obs
{
    SimTime when;
    int tag;

    bool
    operator==(const Obs &o) const
    {
        return when == o.when && tag == o.tag;
    }
};

/**
 * Schedule a deterministic branching workload.  Each event logs
 * (time, tag) and reschedules children; `at` maps a tag to a target
 * simulator, letting the same program run on one kernel (serial) or
 * spread over the shards of an engine (merge).
 */
template <typename SimFor>
void
seedWorkload(SimFor at, std::vector<Obs> &log)
{
    for (int i = 0; i < 8; ++i) {
        Simulator &sim = at(i);
        sim.scheduleAt(10 * (i % 3), [&log, i, at] {
            Simulator &self = at(i);
            log.push_back({self.now(), i});
            for (int c = 0; c < 3; ++c) {
                int tag = 100 + i * 10 + c;
                at(tag).scheduleAt(
                    self.now() + 5 + c,
                    [&log, tag, at] {
                        log.push_back({at(tag).now(), tag});
                    },
                    c - 1);
            }
        });
    }
}

std::vector<Obs>
runSerial()
{
    Simulator sim(42);
    std::vector<Obs> log;
    seedWorkload([&sim](int) -> Simulator & { return sim; }, log);
    sim.runUntil(1000);
    return log;
}

std::vector<Obs>
runMerge(int shards)
{
    ShardedSimulator engine(shards, 42);
    std::vector<Obs> log;
    seedWorkload(
        [&engine, shards](int tag) -> Simulator & {
            return engine.shard(static_cast<ShardId>(tag % shards));
        },
        log);
    engine.runUntil(1000);
    return log;
}

TEST(ShardedSimulator, MergeOneShardMatchesSerial)
{
    EXPECT_EQ(runMerge(1), runSerial());
}

TEST(ShardedSimulator, MergeManyShardsMatchesSerial)
{
    // The shared insertion counter makes the global execution order
    // identical to the serial single-queue kernel for any K.
    EXPECT_EQ(runMerge(2), runSerial());
    EXPECT_EQ(runMerge(3), runSerial());
    EXPECT_EQ(runMerge(8), runSerial());
}

TEST(ShardedSimulator, MergeSkewedPartitionMatchesSerial)
{
    // All events landing on shard 0 keeps the merge loop permanently
    // in its single-nonempty-shard fast path (the K-way key compare
    // is skipped); the observed stream must still equal the serial
    // run for every shard count.
    std::vector<Obs> serial = runSerial();
    for (int shards : {1, 2, 4, 8}) {
        ShardedSimulator engine(shards, 42);
        std::vector<Obs> log;
        seedWorkload(
            [&engine](int) -> Simulator & { return engine.shard(0); },
            log);
        engine.runUntil(1000);
        EXPECT_EQ(log, serial) << "shards=" << shards;
        for (int s = 1; s < shards; ++s)
            EXPECT_EQ(engine.shardStats(static_cast<ShardId>(s))
                          .events,
                      0u);
    }
}

TEST(ShardedSimulator, MergeDrainingTailUsesFastPathCorrectly)
{
    // A cross-shard cascade that collapses onto one shard: the loop
    // crosses from the K-way compare into the fast path mid-run and
    // the tail events still execute in time order.
    ShardedSimulator engine(4, 7);
    std::vector<int> order;
    // Shards 1..3 each fire once early, then everything funnels into
    // shard 0, which reschedules itself several times.
    for (int s = 1; s < 4; ++s) {
        engine.shard(static_cast<ShardId>(s))
            .scheduleAt(s, [&order, s] { order.push_back(s); });
    }
    std::function<void(int)> chain = [&](int depth) {
        order.push_back(100 + depth);
        if (depth < 5) {
            engine.shard(0).schedule(10, [&chain, depth] {
                chain(depth + 1);
            });
        }
    };
    engine.shard(0).scheduleAt(10, [&chain] { chain(0); });
    engine.runUntil(1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 100, 101, 102, 103,
                                       104, 105}));
}

TEST(ShardedSimulator, MergeEqualTimeTiesFollowScheduleOrder)
{
    // Same time, same priority, alternating shards: execution must
    // follow global schedule order exactly, as one queue would.
    ShardedSimulator engine(4, 1);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        engine.shard(static_cast<ShardId>(i % 4))
            .scheduleAt(100, [&order, i] { order.push_back(i); });
    engine.runUntil(100);
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ShardedSimulator, MergePriorityTiesAcrossShards)
{
    // Same time, priorities descending across different shards:
    // lower priority value fires first regardless of shard or
    // insertion order.
    ShardedSimulator engine(3, 1);
    std::vector<int> order;
    for (int i = 0; i < 9; ++i)
        engine.shard(static_cast<ShardId>(i % 3))
            .scheduleAt(
                50, [&order, i] { order.push_back(i); }, 9 - i);
    engine.runUntil(60);
    ASSERT_EQ(order.size(), 9u);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], 8 - i);
}

TEST(ShardedSimulator, MergeCancelCrossShardInFlight)
{
    // An event scheduled into another shard's queue, then cancelled
    // before it fires, must leave only a reclaimed tombstone behind:
    // never executed, not counted pending, and the queue still
    // delivers its neighbors at the same (time, priority).
    ShardedSimulator engine(2, 7);
    int fired = 0;
    bool victim_fired = false;
    engine.shard(1).scheduleAt(10, [&fired] { ++fired; });
    EventId victim = engine.shard(1).scheduleAt(
        10, [&victim_fired] { victim_fired = true; });
    engine.shard(1).scheduleAt(10, [&fired] { ++fired; });
    engine.shard(0).scheduleAt(5, [&engine, victim] {
        EXPECT_TRUE(engine.shard(1).cancel(victim));
        EXPECT_FALSE(engine.shard(1).cancel(victim)); // once only
    });
    engine.runUntil(20);
    EXPECT_FALSE(victim_fired);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(engine.pendingEvents(), 0u);
    EXPECT_EQ(engine.eventsProcessed(), 3u);
}

TEST(ShardedSimulator, MergeStopMidRun)
{
    ShardedSimulator engine(2, 1);
    int ran = 0;
    for (int i = 0; i < 10; ++i)
        engine.shard(static_cast<ShardId>(i % 2))
            .scheduleAt(i, [&engine, &ran] {
                if (++ran == 4)
                    engine.stop();
            });
    engine.runUntil(100);
    EXPECT_EQ(ran, 4);
    EXPECT_TRUE(engine.stopRequested());
    EXPECT_EQ(engine.pendingEvents(), 6u);
    // A later run picks up the remaining events.
    engine.runUntil(100);
    EXPECT_EQ(ran, 10);
    EXPECT_EQ(engine.now(), 100);
}

TEST(ShardedSimulator, RunUntilAdvancesAllShardClocks)
{
    ShardedSimulator engine(3, 1);
    engine.shard(2).scheduleAt(7, [] {});
    engine.runUntil(500);
    for (ShardId s = 0; s < 3; ++s)
        EXPECT_EQ(engine.shard(s).now(), 500);
    engine.runUntil(800);
    EXPECT_EQ(engine.now(), 800);
}

TEST(ShardedSimulator, PostOutsideRunSchedulesDirectly)
{
    ShardedSimulator engine(2, 1);
    bool ran = false;
    engine.post(0, 1, 25, 0, [&ran] { ran = true; });
    EXPECT_EQ(engine.shard(1).pendingEvents(), 1u);
    engine.runUntil(30);
    EXPECT_TRUE(ran);
    EXPECT_EQ(engine.shardStats(0).cross_sent, 1u);
    EXPECT_EQ(engine.shardStats(1).cross_received, 1u);
}

TEST(ShardedSimulator, PostEnforcesLookaheadPromise)
{
    ShardedSimulator::Options opts;
    opts.lookahead = 10;
    ShardedSimulator engine(2, 1, opts);
    EXPECT_THROW(engine.post(0, 1, 5, 0, [] {}), PanicError);
    engine.post(0, 1, 10, 0, [] {}); // exactly at the promise: fine
}

ShardedSimulator::Options
threadedOpts(SimDuration la)
{
    ShardedSimulator::Options o;
    o.mode = ShardExecMode::Threaded;
    o.lookahead = la;
    return o;
}

/**
 * Shard-closed ring workload: every shard keeps a local counter and
 * forwards a token to the next shard `hop` ticks ahead.  Each shard
 * logs only its own executions, so threaded runs race-free.
 */
struct RingState
{
    std::vector<std::uint64_t> count;
    std::vector<std::vector<SimTime>> log;
};

void
pump(ShardedSimulator &engine, RingState &st, ShardId s, int k,
     SimDuration hop, SimTime until)
{
    Simulator &sim = engine.shard(s);
    ++st.count[s];
    st.log[s].push_back(sim.now());
    SimTime next = sim.now() + hop;
    if (next > until)
        return;
    ShardId dst = static_cast<ShardId>((s + 1) % k);
    engine.post(s, dst, next, 0,
                [&engine, &st, dst, k, hop, until] {
                    pump(engine, st, dst, k, hop, until);
                });
}

RingState
runRing(int k, ShardExecMode mode, SimTime until)
{
    ShardedSimulator::Options o;
    o.mode = mode;
    o.lookahead = 3;
    ShardedSimulator engine(k, 11, o);
    RingState st;
    st.count.assign(static_cast<std::size_t>(k), 0);
    st.log.assign(static_cast<std::size_t>(k), {});
    for (ShardId s = 0; s < static_cast<ShardId>(k); ++s)
        engine.shard(s).scheduleAt(
            static_cast<SimTime>(s), [&engine, &st, s, k, until] {
                pump(engine, st, s, k, 3, until);
            });
    engine.runUntil(until);
    EXPECT_EQ(engine.now(), until);
    return st;
}

TEST(ShardedSimulator, ThreadedMatchesMergeOnShardClosedWorkload)
{
    for (int k : {2, 4}) {
        RingState merge = runRing(k, ShardExecMode::Merge, 400);
        RingState threaded =
            runRing(k, ShardExecMode::Threaded, 400);
        EXPECT_EQ(merge.count, threaded.count) << k << " shards";
        EXPECT_EQ(merge.log, threaded.log) << k << " shards";
    }
}

TEST(ShardedSimulator, ThreadedRunsAreDeterministic)
{
    RingState a = runRing(4, ShardExecMode::Threaded, 600);
    RingState b = runRing(4, ShardExecMode::Threaded, 600);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.log, b.log);
}

TEST(ShardedSimulator, ThreadedEqualTimeCrossTiesAreDeterministic)
{
    // Two source shards each post a burst to shard 0 at the same
    // (time, priority).  Cross ties must resolve by (source shard,
    // source sequence) — identically on every run, whatever the
    // thread interleaving was.
    auto run = [] {
        ShardedSimulator engine(3, 5, threadedOpts(0));
        auto order = std::make_shared<std::vector<int>>();
        for (ShardId src : {ShardId(1), ShardId(2)})
            engine.shard(src).scheduleAt(
                10, [&engine, src, order] {
                    for (int i = 0; i < 4; ++i)
                        engine.post(
                            src, 0, 50, 0,
                            [order, src, i] {
                                order->push_back(
                                    static_cast<int>(src) * 10 + i);
                            });
                });
        engine.runUntil(100);
        return *order;
    };
    std::vector<int> first = run();
    ASSERT_EQ(first.size(), 8u);
    // Source shard 1's burst precedes shard 2's; bursts stay FIFO.
    EXPECT_EQ(first, (std::vector<int>{10, 11, 12, 13, 20, 21, 22,
                                       23}));
    for (int rep = 0; rep < 10; ++rep)
        EXPECT_EQ(run(), first);
}

TEST(ShardedSimulator, ThreadedStopMidHorizon)
{
    // Shard 1 requests a stop partway through a long horizon window;
    // the run must end promptly, leave the un-run events pending,
    // and a follow-up run must finish them.
    ShardedSimulator engine(2, 1, threadedOpts(0));
    int ran = 0;
    for (int i = 0; i < 50; ++i)
        engine.shard(1).scheduleAt(i, [&engine, &ran] {
            if (++ran == 10)
                engine.stop();
        });
    engine.runUntil(1000);
    EXPECT_TRUE(engine.stopRequested());
    EXPECT_EQ(ran, 10);
    EXPECT_EQ(engine.pendingEvents(), 40u);
    engine.runUntil(1000);
    EXPECT_EQ(ran, 50);
    EXPECT_EQ(engine.pendingEvents(), 0u);
}

TEST(ShardedSimulator, ThreadedShardLocalStopPropagates)
{
    // Model code calling its own shard kernel's stop() must end the
    // whole engine run, like the serial kernel's stop().
    ShardedSimulator engine(2, 1, threadedOpts(0));
    bool later_ran = false;
    engine.shard(1).scheduleAt(
        5, [&engine] { engine.shard(1).stop(); });
    engine.shard(0).scheduleAt(500,
                               [&later_ran] { later_ran = true; });
    engine.runUntil(1000);
    EXPECT_TRUE(engine.stopRequested());
    EXPECT_FALSE(later_ran);
}

TEST(ShardedSimulator, ThreadedDrainRun)
{
    ShardedSimulator engine(3, 1, threadedOpts(2));
    std::vector<std::uint64_t> hits(3, 0);
    for (ShardId s = 0; s < 3; ++s)
        engine.shard(s).scheduleAt(
            static_cast<SimTime>(1 + s), [&engine, &hits, s] {
                ++hits[s];
                engine.post(s, static_cast<ShardId>((s + 1) % 3),
                            engine.shard(s).now() + 4, 0,
                            [&hits, s] { ++hits[(s + 1) % 3]; });
            });
    engine.run();
    EXPECT_EQ(engine.pendingEvents(), 0u);
    for (ShardId s = 0; s < 3; ++s)
        EXPECT_EQ(hits[s], 2u) << "shard " << s;
    EXPECT_EQ(engine.eventsProcessed(), 6u);
}

TEST(ShardedSimulator, ThreadedRecordsShardStats)
{
    ShardedSimulator engine(2, 1, threadedOpts(3));
    RingState st;
    st.count.assign(2, 0);
    st.log.assign(2, {});
    engine.shard(0).scheduleAt(0, [&engine, &st] {
        pump(engine, st, 0, 2, 3, 60);
    });
    engine.runUntil(60);
    EXPECT_GT(engine.rounds(), 0u);
    std::uint64_t events = 0;
    for (ShardId s = 0; s < 2; ++s) {
        events += engine.shardStats(s).events;
        EXPECT_GT(engine.shardStats(s).rounds, 0u);
    }
    EXPECT_EQ(events, engine.eventsProcessed());
    EXPECT_GT(engine.shardStats(0).cross_sent, 0u);
    EXPECT_GT(engine.shardStats(1).cross_received, 0u);
    // Executed-window collection (the tracer's shardN.window lanes)
    // only exists in threaded runs; windows must be well-formed.
    for (ShardId s = 0; s < 2; ++s) {
        EXPECT_FALSE(engine.shardWindows(s).empty());
        for (const ShardedSimulator::Window &w :
             engine.shardWindows(s))
            EXPECT_LE(w.start, w.end);
    }
}

TEST(ShardedSimulator, SingleShardSeedMatchesPlainSimulator)
{
    // Shard 0 must carry the caller's seed unchanged so engine-based
    // model construction reproduces serial RNG streams exactly.
    Simulator plain(1234);
    ShardedSimulator engine(4, 1234);
    EXPECT_EQ(plain.rng().fork().uniformInt(0, 1 << 30),
              engine.shard(0).rng().fork().uniformInt(0, 1 << 30));
}

TEST(ShardedSimulator, ShardIdAndOwnerAreWired)
{
    ShardedSimulator engine(3, 1);
    for (ShardId s = 0; s < 3; ++s) {
        EXPECT_EQ(engine.shard(s).shardId(), s);
        EXPECT_EQ(engine.shard(s).shardOwner(), &engine);
    }
    Simulator standalone(1);
    EXPECT_EQ(standalone.shardId(), 0u);
    EXPECT_EQ(standalone.shardOwner(), nullptr);
}

} // namespace
} // namespace vcp
