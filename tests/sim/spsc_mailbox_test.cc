#include "sim/spsc_mailbox.hh"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace vcp {
namespace {

TEST(SpscMailbox, FifoSingleThread)
{
    SpscMailbox<int> box(8);
    for (int i = 0; i < 5; ++i)
        box.push(int(i));
    int v = -1;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(box.pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(box.pop(v));
    EXPECT_TRUE(box.empty());
}

TEST(SpscMailbox, CapacityRoundsToPowerOfTwo)
{
    SpscMailbox<int> box(5);
    EXPECT_EQ(box.capacity(), 8u);
}

TEST(SpscMailbox, OverflowPreservesOrder)
{
    // Push far past capacity with no draining: the tail spills into
    // the overflow vector, and popping must still return send order.
    SpscMailbox<int> box(4);
    for (int i = 0; i < 100; ++i)
        box.push(int(i));
    int v = -1;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(box.pop(v));
        ASSERT_EQ(v, i);
    }
    EXPECT_FALSE(box.pop(v));
}

TEST(SpscMailbox, OverflowStaysActiveUntilDrained)
{
    // Fill the ring, spill, then pop a few ring slots free and push
    // again: the new items must NOT take the freed ring slots (they
    // would overtake the spilled ones).
    SpscMailbox<int> box(4);
    int next = 0;
    for (int i = 0; i < 6; ++i) // 4 in ring, 2 spilled
        box.push(int(next++));
    int v = -1;
    ASSERT_TRUE(box.pop(v));
    EXPECT_EQ(v, 0);
    box.push(int(next++)); // must join the overflow, not the ring
    for (int expect = 1; expect < next; ++expect) {
        ASSERT_TRUE(box.pop(v));
        ASSERT_EQ(v, expect);
    }
    EXPECT_TRUE(box.empty());
}

TEST(SpscMailbox, MoveOnlyPayload)
{
    SpscMailbox<std::unique_ptr<int>> box(2);
    box.push(std::make_unique<int>(7));
    box.push(std::make_unique<int>(8));
    box.push(std::make_unique<int>(9)); // spills
    std::unique_ptr<int> p;
    ASSERT_TRUE(box.pop(p));
    EXPECT_EQ(*p, 7);
    ASSERT_TRUE(box.pop(p));
    EXPECT_EQ(*p, 8);
    ASSERT_TRUE(box.pop(p));
    EXPECT_EQ(*p, 9);
}

TEST(SpscMailbox, TwoThreadStressKeepsOrder)
{
    SpscMailbox<std::uint64_t> box(64);
    constexpr std::uint64_t kItems = 200000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kItems; ++i)
            box.push(std::uint64_t(i));
    });
    std::uint64_t expect = 0;
    std::uint64_t v = 0;
    while (expect < kItems) {
        if (box.pop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        }
    }
    producer.join();
    EXPECT_FALSE(box.pop(v));
}

} // namespace
} // namespace vcp
