/**
 * @file
 * Tests for the streaming summary accumulator (Welford + merge).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"
#include "sim/summary.hh"

namespace vcp {
namespace {

TEST(SummaryStatsTest, EmptyDefaults)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(SummaryStatsTest, SingleSample)
{
    SummaryStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SummaryStatsTest, KnownMoments)
{
    SummaryStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, MergeEqualsCombinedStream)
{
    Rng rng(2);
    SummaryStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        double v = rng.normal(10.0, 3.0);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty)
{
    SummaryStats a, b;
    a.add(1.0);
    a.add(3.0);
    SummaryStats a_copy = a;
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());

    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SummaryStatsTest, CvOfConstantIsZero)
{
    SummaryStats s;
    for (int i = 0; i < 10; ++i)
        s.add(7.0);
    EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(SummaryStatsTest, ResetClears)
{
    SummaryStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SummaryStatsTest, NumericallyStableForLargeOffsets)
{
    // Classic catastrophic-cancellation case: large mean, small
    // variance.
    SummaryStats s;
    double base = 1e9;
    for (double v : {base + 1, base + 2, base + 3})
        s.add(v);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(SummaryStatsTest, ToStringMentionsCount)
{
    SummaryStats s;
    s.add(2.0);
    EXPECT_NE(s.toString().find("n=1"), std::string::npos);
}

} // namespace
} // namespace vcp
