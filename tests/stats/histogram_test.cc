/**
 * @file
 * Tests for the log-bucketed histogram, including parameterized
 * quantile-accuracy properties against known distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "stats/histogram.hh"

namespace vcp {
namespace {

TEST(HistogramTest, EmptyQuantilesAreZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(HistogramTest, SingleValue)
{
    Histogram h;
    h.add(42.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
    // Quantiles clamp to the observed range.
    EXPECT_DOUBLE_EQ(h.p50(), 42.0);
    EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(HistogramTest, NegativeValuesClampToZeroBucket)
{
    Histogram h;
    h.add(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(HistogramTest, WeightedAdd)
{
    Histogram h;
    h.add(10.0, 3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
    h.add(10.0, 0); // no-op
    EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, QuantileMonotonicInQ)
{
    Rng rng(3);
    Histogram h;
    for (int i = 0; i < 10000; ++i)
        h.add(rng.exponential(100.0));
    double last = 0.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        double v = h.quantile(q);
        EXPECT_GE(v, last);
        last = v;
    }
}

TEST(HistogramTest, QuantilesWithinObservedRange)
{
    Rng rng(4);
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.add(rng.uniform(5.0, 50.0));
    EXPECT_GE(h.p50(), h.min());
    EXPECT_LE(h.p99(), h.max());
}

TEST(HistogramTest, MergeCombinesCounts)
{
    Histogram a, b;
    a.add(10.0);
    b.add(1000.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(HistogramTest, MergeIncompatiblePanics)
{
    Histogram a(1.0, 1.15, 64);
    Histogram b(1.0, 1.15, 128);
    EXPECT_THROW(a.merge(b), PanicError);
    Histogram c(2.0, 1.15, 64);
    EXPECT_THROW(a.merge(c), PanicError);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h;
    h.add(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, BucketEdgesGrowGeometrically)
{
    Histogram h(1.0, 2.0, 16);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(1), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(2), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketLowerEdge(3), 4.0);
}

TEST(HistogramTest, OverflowLandsInLastBucket)
{
    Histogram h(1.0, 2.0, 4);
    h.add(1e12);
    EXPECT_EQ(h.bucketCount(3), 1u);
}

TEST(HistogramTest, InvalidConstructionPanics)
{
    EXPECT_THROW(Histogram(0.0, 1.15, 64), PanicError);
    EXPECT_THROW(Histogram(1.0, 1.0, 64), PanicError);
    EXPECT_THROW(Histogram(1.0, 1.15, 1), PanicError);
}

TEST(HistogramTest, PercentileHelpersOnEmptyAreAllZero)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.p50(), 0.0);
    EXPECT_DOUBLE_EQ(h.p90(), 0.0);
    EXPECT_DOUBLE_EQ(h.p95(), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
    // Degenerate q values are equally harmless when empty.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, SingleSamplePercentilesAllCollapse)
{
    Histogram h;
    h.add(1234.5);
    // With one sample every percentile is that sample.
    EXPECT_DOUBLE_EQ(h.p50(), 1234.5);
    EXPECT_DOUBLE_EQ(h.p90(), 1234.5);
    EXPECT_DOUBLE_EQ(h.p95(), 1234.5);
    EXPECT_DOUBLE_EQ(h.p99(), 1234.5);
}

TEST(HistogramTest, HeavyTailSeparatesTailPercentilesFromMedian)
{
    // 950 fast ops at ~1 ms, 50 stragglers at ~100 s: the shape of a
    // control-plane latency column with a full-clone tail.  The
    // median must ignore the tail and p99 must land in it.
    Histogram h;
    for (int i = 0; i < 950; ++i)
        h.add(1000.0 + i); // ~1 ms, spread over a few buckets
    for (int i = 0; i < 50; ++i)
        h.add(1e8 + i * 1e6); // ~100 s stragglers

    double p50 = h.p50();
    double p99 = h.p99();
    EXPECT_GT(p50, 500.0);
    EXPECT_LT(p50, 5000.0);
    EXPECT_GE(p99, 9e7);
    EXPECT_LE(p99, h.max());
    // The tail dominates the mean but not the median.
    EXPECT_GT(h.mean(), p50 * 100);
    // Monotone through the tail: p50 <= p95 <= p99.
    EXPECT_LE(p50, h.p95());
    EXPECT_LE(h.p95(), p99);
}

TEST(HistogramTest, HeavyTailParetoPercentilesTrackAnalytic)
{
    // Pareto(alpha=1.5): infinite variance, the classic heavy tail.
    // Quantiles must still come out near the analytic values.
    Rng rng(7);
    double alpha = 1.5, xm = 10.0;
    Histogram h(1.0, 1.1, 256);
    for (int i = 0; i < 200000; ++i) {
        double u = rng.uniform(0.0, 1.0);
        if (u >= 1.0)
            continue;
        h.add(xm / std::pow(1.0 - u, 1.0 / alpha));
    }
    auto analytic = [&](double q) {
        return xm / std::pow(1.0 - q, 1.0 / alpha);
    };
    EXPECT_NEAR(h.p50(), analytic(0.50), analytic(0.50) * 0.12);
    EXPECT_NEAR(h.p95(), analytic(0.95), analytic(0.95) * 0.12);
    EXPECT_NEAR(h.p99(), analytic(0.99), analytic(0.99) * 0.15);
}

/**
 * Property: for a large exponential sample the histogram's quantile
 * estimate is within the bucket relative error of the analytic
 * quantile.
 */
class HistogramQuantileAccuracy
    : public ::testing::TestWithParam<double> // quantile q
{};

TEST_P(HistogramQuantileAccuracy, ExponentialQuantilesClose)
{
    double q = GetParam();
    Rng rng(99);
    double mean = 250.0;
    Histogram h(1.0, 1.1, 256);
    for (int i = 0; i < 200000; ++i)
        h.add(rng.exponential(mean));
    double analytic = -mean * std::log(1.0 - q);
    // Geometric buckets with growth 1.1 plus sampling noise: allow
    // 12% relative error.
    EXPECT_NEAR(h.quantile(q), analytic, analytic * 0.12);
}

INSTANTIATE_TEST_SUITE_P(QuantileSweep, HistogramQuantileAccuracy,
                         ::testing::Values(0.25, 0.5, 0.75, 0.9, 0.95,
                                           0.99));

} // namespace
} // namespace vcp
