/**
 * @file
 * Tests for the time-bucketed series.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "stats/timeseries.hh"

namespace vcp {
namespace {

TEST(TimeSeriesTest, BucketsSamplesByTime)
{
    TimeSeries ts(seconds(10));
    ts.add(seconds(1), 2.0);
    ts.add(seconds(9), 4.0);
    ts.add(seconds(11), 8.0);
    ASSERT_EQ(ts.numBuckets(), 2u);
    EXPECT_EQ(ts.bucket(0).count, 2u);
    EXPECT_DOUBLE_EQ(ts.bucket(0).sum, 6.0);
    EXPECT_DOUBLE_EQ(ts.bucket(0).mean(), 3.0);
    EXPECT_EQ(ts.bucket(1).count, 1u);
    EXPECT_DOUBLE_EQ(ts.bucket(1).sum, 8.0);
}

TEST(TimeSeriesTest, GapsProduceEmptyBuckets)
{
    TimeSeries ts(seconds(1));
    ts.add(seconds(0));
    ts.add(seconds(5));
    ASSERT_EQ(ts.numBuckets(), 6u);
    EXPECT_EQ(ts.bucket(3).count, 0u);
    EXPECT_DOUBLE_EQ(ts.bucket(3).mean(), 0.0);
    EXPECT_EQ(ts.bucket(3).start, seconds(3));
}

TEST(TimeSeriesTest, TotalsAccumulate)
{
    TimeSeries ts(seconds(1));
    for (int i = 0; i < 10; ++i)
        ts.add(seconds(i), 1.5);
    EXPECT_EQ(ts.totalCount(), 10u);
    EXPECT_DOUBLE_EQ(ts.totalSum(), 15.0);
}

TEST(TimeSeriesTest, RatesPerSecond)
{
    TimeSeries ts(seconds(10));
    for (int i = 0; i < 20; ++i)
        ts.add(seconds(0.1 * i)); // 20 events in bucket 0 (0-2 s)
    auto rates = ts.ratesPerSecond();
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_DOUBLE_EQ(rates[0], 2.0);
}

TEST(TimeSeriesTest, NegativeTimePanics)
{
    TimeSeries ts(seconds(1));
    EXPECT_THROW(ts.add(-1), PanicError);
}

TEST(TimeSeriesTest, ZeroWidthPanics)
{
    EXPECT_THROW(TimeSeries(0), PanicError);
}

TEST(TimeSeriesTest, CsvRendering)
{
    TimeSeries ts(seconds(1));
    ts.add(seconds(0.5), 2.0);
    std::string csv = ts.toCsv();
    EXPECT_NE(csv.find("bucket_start_s,count,sum,mean"),
              std::string::npos);
    EXPECT_NE(csv.find("0.0,1,2,2"), std::string::npos);
}

} // namespace
} // namespace vcp
