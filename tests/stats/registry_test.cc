/**
 * @file
 * Tests for the named statistics registry.
 */

#include <gtest/gtest.h>

#include "stats/registry.hh"

namespace vcp {
namespace {

TEST(StatRegistryTest, CounterLifecycle)
{
    StatRegistry reg;
    reg.counter("a.b").inc();
    reg.counter("a.b").inc(4);
    EXPECT_EQ(reg.counter("a.b").value(), 5u);
    EXPECT_TRUE(reg.has("a.b"));
    EXPECT_FALSE(reg.has("a.c"));
}

TEST(StatRegistryTest, GaugeSetsAndAdds)
{
    StatRegistry reg;
    reg.gauge("g").set(3.0);
    reg.gauge("g").add(-1.5);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 1.5);
}

TEST(StatRegistryTest, HistogramCreateOnceParamsSticky)
{
    StatRegistry reg;
    Histogram &h1 = reg.histogram("h", 1.0, 2.0);
    // Second call with different params returns the same histogram.
    Histogram &h2 = reg.histogram("h", 100.0, 3.0);
    EXPECT_EQ(&h1, &h2);
    h1.add(5.0);
    EXPECT_EQ(reg.histogram("h").count(), 1u);
}

TEST(StatRegistryTest, SummaryAccumulates)
{
    StatRegistry reg;
    reg.summary("s").add(2.0);
    reg.summary("s").add(4.0);
    EXPECT_DOUBLE_EQ(reg.summary("s").mean(), 3.0);
}

TEST(StatRegistryTest, NamesSortedAcrossKinds)
{
    StatRegistry reg;
    reg.counter("z");
    reg.gauge("a");
    reg.histogram("m");
    reg.summary("b");
    auto names = reg.names();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[3], "z");
}

TEST(StatRegistryTest, ResetAllClearsEverything)
{
    StatRegistry reg;
    reg.counter("c").inc();
    reg.gauge("g").set(1.0);
    reg.histogram("h").add(1.0);
    reg.summary("s").add(1.0);
    reg.resetAll();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
    EXPECT_EQ(reg.summary("s").count(), 0u);
}

TEST(StatRegistryTest, CsvContainsAllStats)
{
    StatRegistry reg;
    reg.counter("ops").inc(7);
    reg.histogram("lat").add(100.0);
    std::string csv = reg.toCsv();
    EXPECT_NE(csv.find("ops,counter,value,7"), std::string::npos);
    EXPECT_NE(csv.find("lat,histogram,count,1"), std::string::npos);
    EXPECT_NE(csv.find("lat,histogram,p95"), std::string::npos);
}

TEST(StatRegistryTest, ToStringHumanReadable)
{
    StatRegistry reg;
    reg.counter("x.y").inc(3);
    std::string s = reg.toString();
    EXPECT_NE(s.find("x.y"), std::string::npos);
    EXPECT_NE(s.find("3"), std::string::npos);
}

} // namespace
} // namespace vcp
