/**
 * @file
 * Tests for the table builder and its three renderers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "stats/table.hh"

namespace vcp {
namespace {

TEST(TableTest, BuildsAndIndexes)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(static_cast<std::int64_t>(42));
    t.row().cell("beta").cell(2.5, 1);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numColumns(), 2u);
    EXPECT_EQ(t.at(0, 0), "alpha");
    EXPECT_EQ(t.at(0, 1), "42");
    EXPECT_EQ(t.at(1, 1), "2.5");
}

TEST(TableTest, EmptyColumnListPanics)
{
    EXPECT_THROW(Table({}), PanicError);
}

TEST(TableTest, TooManyCellsPanics)
{
    Table t({"only"});
    t.row().cell("a");
    EXPECT_THROW(t.cell("b"), PanicError);
}

TEST(TableTest, CellBeforeRowPanics)
{
    Table t({"c"});
    EXPECT_THROW(t.cell("x"), PanicError);
}

TEST(TableTest, IncompleteRowDetectedOnRender)
{
    Table t({"a", "b"});
    t.row().cell("only-one");
    EXPECT_THROW(t.toText(), PanicError);
}

TEST(TableTest, IncompleteRowDetectedOnNextRow)
{
    Table t({"a", "b"});
    t.row().cell("x");
    EXPECT_THROW(t.row(), PanicError);
}

TEST(TableTest, OutOfRangeAtPanics)
{
    Table t({"a"});
    t.row().cell("v");
    EXPECT_THROW(t.at(1, 0), PanicError);
    EXPECT_THROW(t.at(0, 1), PanicError);
}

TEST(TableTest, TextAlignsColumns)
{
    Table t({"id", "name"});
    t.row().cell(static_cast<std::int64_t>(1)).cell("long-name");
    t.row().cell(static_cast<std::int64_t>(100)).cell("x");
    std::string text = t.toText();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, MarkdownHasSeparatorRow)
{
    Table t({"a", "b"});
    t.row().cell("1").cell("2");
    std::string md = t.toMarkdown();
    EXPECT_NE(md.find("| a | b |"), std::string::npos);
    EXPECT_NE(md.find("|---|---|"), std::string::npos);
    EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials)
{
    Table t({"text"});
    t.row().cell("has,comma");
    t.row().cell("has\"quote");
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, NumericFormatting)
{
    Table t({"v"});
    t.row().cell(3.14159, 2);
    t.row().cell(static_cast<std::uint64_t>(18446744073709551615ull));
    EXPECT_EQ(t.at(0, 0), "3.14");
    EXPECT_EQ(t.at(1, 0), "18446744073709551615");
}

} // namespace
} // namespace vcp
