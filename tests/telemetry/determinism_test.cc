/**
 * @file
 * End-to-end telemetry determinism: a CloudSimulation exporting
 * streaming snapshots must emit identical merged series for every
 * --parallel-shards count.  Everything up to the trailing "shards"
 * key of each line is compared byte-for-byte (the shard-scoped
 * section legitimately differs — that is the point of having it
 * last; see the layout contract in telemetry/snapshot.hh).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/snapshot.hh"
#include "telemetry/telemetry.hh"
#include "workload/profiles.hh"

namespace vcp {
namespace {

/** Snapshot lines with the shard-scoped tail stripped. */
std::vector<std::string>
exportedPrefixes(int shards)
{
    CloudSetupSpec spec = cloudASpec();
    spec.infra.hosts = 8;
    spec.workload.duration = hours(1);
    spec.exec.shards = shards;

    CloudSimulation cs(spec, /*seed=*/42);
    TelemetryRegistry reg(seconds(600));
    cs.enableTelemetry(&reg);
    SnapshotEmitter em(cs.sim(), reg, seconds(600));
    std::ostringstream out;
    em.writeTo(&out);
    em.start();
    cs.run(minutes(10));
    em.stop();

    std::vector<std::string> lines;
    std::istringstream in(out.str());
    std::string line;
    while (std::getline(in, line)) {
        auto cut = line.find(",\"shards\":");
        lines.push_back(line.substr(0, cut));
    }
    return lines;
}

TEST(TelemetryDeterminism, WindowedRatesMatchAcrossShardCounts)
{
    std::vector<std::string> serial = exportedPrefixes(1);
    ASSERT_GT(serial.size(), 3u);
    // The run does real work: some window must show a nonzero rate.
    bool live = false;
    for (const auto &l : serial)
        live |= l.find("\"db.txn\":{\"total\":0") == std::string::npos;
    EXPECT_TRUE(live);

    for (int k : {2, 4, 8}) {
        std::vector<std::string> sharded = exportedPrefixes(k);
        ASSERT_EQ(sharded.size(), serial.size()) << "shards=" << k;
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(sharded[i], serial[i])
                << "shards=" << k << " line=" << i;
    }
}

} // namespace
} // namespace vcp
