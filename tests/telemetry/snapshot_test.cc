/**
 * @file
 * Registry + snapshot-emitter tests: per-shard cells merging into one
 * unified series, the snapshot edge cases (a window with zero events;
 * a run shorter than one window), the health report, and the
 * O(instruments) footprint contract.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/simulator.hh"
#include "telemetry/health.hh"
#include "telemetry/snapshot.hh"
#include "telemetry/telemetry.hh"

namespace vcp {
namespace {

TEST(TelemetryRegistry, ShardCellsMergeIntoOneSeries)
{
    TelemetryRegistry reg(seconds(8));
    WindowedCounter *s0 = reg.counter("ops", 0);
    WindowedCounter *s1 = reg.counter("ops", 1);
    ASSERT_NE(s0, s1);
    EXPECT_EQ(reg.counter("ops", 0), s0); // get-or-create is stable

    s0->add(seconds(1), 2);
    s1->add(seconds(2), 3);
    WindowedCounter merged = reg.mergedCounter("ops");
    EXPECT_EQ(merged.total(), 5u);
    EXPECT_EQ(merged.inWindow(seconds(2)), 5u);

    LatencyHistogram *h0 = reg.histogram("lat", 0);
    LatencyHistogram *h1 = reg.histogram("lat", 3);
    h0->add(100);
    h1->add(300);
    LatencyHistogram mh = reg.mergedHistogram("lat");
    EXPECT_EQ(mh.count(), 2u);
    EXPECT_DOUBLE_EQ(mh.min(), 100.0);
    EXPECT_DOUBLE_EQ(mh.max(), 300.0);

    EXPECT_EQ(reg.counterNames().size(), 1u);
    EXPECT_EQ(reg.histogramNames().size(), 1u);
}

TEST(TelemetryRegistry, GaugeProbesSampleIntoDecayingGauges)
{
    TelemetryRegistry reg(seconds(8));
    std::int64_t depth = 5;
    reg.addGaugeProbe("q", [&] { return depth; });
    reg.sampleGauges(seconds(1));
    depth = 9;
    reg.sampleGauges(seconds(2));

    const DecayingGauge *g = reg.findGauge("q");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->samples(), 2u);
    EXPECT_DOUBLE_EQ(g->last(), 9.0);
    EXPECT_DOUBLE_EQ(g->max(), 9.0);
}

TEST(TelemetryRegistry, FootprintIsIndependentOfRunLength)
{
    // The O(1)-memory contract: a 10x-longer event stream leaves the
    // instrument footprint bit-for-bit identical.
    auto run = [](SimTime end) {
        TelemetryRegistry reg(seconds(60));
        WindowedCounter *c = reg.counter("ops");
        LatencyHistogram *h = reg.histogram("lat");
        DecayingGauge *g = reg.gauge("q");
        for (SimTime t = 0; t < end; t += msec(100)) {
            c->add(t);
            h->add(t % 10'000);
            g->sample(t, static_cast<double>(t % 50));
        }
        return std::pair(reg.numInstruments(), reg.footprintBytes());
    };
    auto short_run = run(seconds(10));
    auto long_run = run(seconds(100));
    EXPECT_GT(short_run.second, 0u);
    EXPECT_EQ(long_run.first, short_run.first);
    EXPECT_EQ(long_run.second, short_run.second);
}

TEST(SnapshotEmitter, EmitsOneLinePerWindow)
{
    Simulator sim(1);
    TelemetryRegistry reg(seconds(10));
    WindowedCounter *c = reg.counter("ops");
    sim.schedule(seconds(3), [&] { c->add(sim.now()); });
    sim.schedule(seconds(14), [&] { c->add(sim.now()); });

    SnapshotEmitter em(sim, reg, seconds(10));
    std::ostringstream out;
    em.writeTo(&out);
    em.start();
    sim.runUntil(seconds(30));
    em.stop();

    EXPECT_EQ(em.snapshots(), 3u);
    std::istringstream lines(out.str());
    std::string line;
    int n = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.find("{\"type\":\"snapshot\""), 0u) << line;
        ++n;
    }
    EXPECT_EQ(n, 3);
    // Window totals: 1 event in window 1, 1 in window 2, 0 in 3.
    EXPECT_NE(out.str().find("\"ops\":{\"total\":1,\"window\":1"),
              std::string::npos);
    EXPECT_NE(out.str().find("\"ops\":{\"total\":2,\"window\":1"),
              std::string::npos);
}

TEST(SnapshotEmitter, WindowWithZeroEventsStillEmits)
{
    Simulator sim(1);
    TelemetryRegistry reg(seconds(5));
    reg.counter("ops"); // registered but never incremented
    reg.addUtilProbe("util.x", [] { return 0.25; });

    SnapshotEmitter em(sim, reg, seconds(5));
    std::ostringstream out;
    em.writeTo(&out);
    em.start();
    sim.schedule(seconds(20), [] {}); // keep the clock moving
    sim.runUntil(seconds(20));
    em.stop();

    EXPECT_EQ(em.snapshots(), 4u);
    EXPECT_NE(out.str().find(
                  "\"ops\":{\"total\":0,\"window\":0,"
                  "\"rate_per_s\":0}"),
              std::string::npos);
}

TEST(SnapshotEmitter, RunShorterThanOneWindowSnapshotsAtFinish)
{
    Simulator sim(1);
    TelemetryRegistry reg(seconds(60));
    WindowedCounter *c = reg.counter("ops");
    reg.addUtilProbe("util.x", [] { return 0.5; });
    sim.schedule(seconds(2), [&] { c->add(sim.now()); });

    SnapshotEmitter em(sim, reg, seconds(60));
    std::ostringstream out;
    em.writeTo(&out);
    em.start();
    sim.runUntil(seconds(3)); // far short of the first window tick
    em.stop();
    EXPECT_EQ(em.snapshots(), 0u);

    HealthReport hr = buildHealthReport(reg, sim.now(),
                                        em.recentDominants(),
                                        em.windowWins());
    em.finish(hr);

    // finish() emitted the partial-window snapshot plus the health
    // line, so even a tiny run yields a complete metrics file.
    EXPECT_EQ(em.snapshots(), 1u);
    std::istringstream lines(out.str());
    std::string first, second, extra;
    ASSERT_TRUE(std::getline(lines, first));
    ASSERT_TRUE(std::getline(lines, second));
    EXPECT_FALSE(std::getline(lines, extra));
    EXPECT_EQ(first.find("{\"type\":\"snapshot\""), 0u);
    EXPECT_NE(first.find("\"ops\":{\"total\":1,\"window\":1"),
              std::string::npos);
    EXPECT_EQ(second.find("{\"type\":\"health\""), 0u);
    EXPECT_NE(second.find("\"dominant\":\"util.x\""),
              std::string::npos);
}

TEST(SnapshotEmitter, UnstartedEmitterSchedulesNothing)
{
    Simulator sim(1);
    TelemetryRegistry reg;
    SnapshotEmitter em(sim, reg);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    sim.run();
    EXPECT_EQ(sim.eventsProcessed(), 0u);
    EXPECT_EQ(em.snapshots(), 0u);
}

TEST(HealthReport, RanksSubsystemsAndFlagsControlPlane)
{
    TelemetryRegistry reg;
    reg.addUtilProbe("util.api", [] { return 0.9; });
    reg.addUtilProbe("util.fabric", [] { return 0.4; });

    HealthReport hr = buildHealthReport(reg, seconds(5), {}, {});
    ASSERT_EQ(hr.subsystems.size(), 2u);
    EXPECT_EQ(hr.subsystems[0].first, "util.api");
    EXPECT_EQ(hr.dominant, "util.api");
    EXPECT_TRUE(hr.control_plane_limited);

    hr.top_hosts = {{"h1", 0.2}, {"h2", 0.8}, {"h3", 0.0}};
    topKCongested(hr.top_hosts, 2);
    ASSERT_EQ(hr.top_hosts.size(), 2u);
    EXPECT_EQ(hr.top_hosts[0].name, "h2");
    EXPECT_EQ(hr.top_hosts[1].name, "h1");

    std::string txt = healthText(hr);
    EXPECT_NE(txt.find("util.api"), std::string::npos);
    EXPECT_NE(txt.find("control plane"), std::string::npos);
    std::string json = healthJson(hr);
    EXPECT_EQ(json.find("{\"type\":\"health\""), 0u);
    EXPECT_NE(json.find("\"control_plane_limited\":true"),
              std::string::npos);
}

TEST(HealthReport, DataPlaneDominantIsNotControlLimited)
{
    TelemetryRegistry reg;
    reg.addUtilProbe("util.fabric", [] { return 0.9; });
    reg.addUtilProbe("util.api", [] { return 0.1; });
    HealthReport hr = buildHealthReport(reg, 0, {}, {});
    EXPECT_EQ(hr.dominant, "util.fabric");
    EXPECT_FALSE(hr.control_plane_limited);
}

} // namespace
} // namespace vcp
