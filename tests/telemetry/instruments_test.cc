/**
 * @file
 * Instrument-primitive tests: sliding-window counter semantics, the
 * decaying gauge, and — the property the per-shard export rests on —
 * merge identity: N cells fed disjoint streams and then merged must
 * equal one cell fed the interleaved stream.
 */

#include <gtest/gtest.h>

#include <random>

#include "telemetry/instruments.hh"
#include "trace/latency_hist.hh"

namespace vcp {
namespace {

TEST(WindowedCounter, TotalAndWindowTrackSeparately)
{
    WindowedCounter c(seconds(8)); // 1 s slots
    c.add(seconds(1));
    c.add(seconds(2), 3);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.inWindow(seconds(2)), 4u);

    // Far past the window: total persists, window drains to zero.
    EXPECT_EQ(c.inWindow(seconds(100)), 0u);
    EXPECT_EQ(c.total(), 4u);
}

TEST(WindowedCounter, SlidingWindowEvictsOldSlots)
{
    WindowedCounter c(seconds(8));
    for (int s = 0; s < 16; ++s)
        c.add(seconds(s)); // one event per second for 16 s
    EXPECT_EQ(c.total(), 16u);
    // Trailing 8 s window at t=15 covers slots for seconds 8..15.
    EXPECT_EQ(c.inWindow(seconds(15)), 8u);
    EXPECT_DOUBLE_EQ(c.ratePerSec(seconds(15)), 1.0);
}

TEST(WindowedCounter, ZeroEventsInWindowReadsZero)
{
    WindowedCounter c(seconds(8));
    EXPECT_EQ(c.inWindow(0), 0u);
    EXPECT_DOUBLE_EQ(c.ratePerSec(0), 0.0);
    c.add(seconds(1));
    EXPECT_EQ(c.inWindow(seconds(1)), 1u);
    EXPECT_EQ(c.inWindow(seconds(30)), 0u);
}

TEST(WindowedCounter, MergeEqualsSingleCounterOracle)
{
    // Interleave a deterministic event stream across 4 "shard" cells;
    // the merged view must match one counter that saw everything.
    WindowedCounter oracle(seconds(16));
    WindowedCounter cells[4] = {
        WindowedCounter(seconds(16)), WindowedCounter(seconds(16)),
        WindowedCounter(seconds(16)), WindowedCounter(seconds(16))};

    std::mt19937 rng(7);
    SimTime t = 0;
    for (int i = 0; i < 500; ++i) {
        t += static_cast<SimTime>(rng() % usec(900'000));
        std::uint64_t n = 1 + rng() % 3;
        oracle.add(t, n);
        cells[rng() % 4].add(t, n);
    }

    WindowedCounter merged(seconds(16));
    for (const auto &c : cells)
        merged.merge(c);

    EXPECT_EQ(merged.total(), oracle.total());
    EXPECT_EQ(merged.inWindow(t), oracle.inWindow(t));
    EXPECT_DOUBLE_EQ(merged.ratePerSec(t), oracle.ratePerSec(t));
}

TEST(WindowedCounter, MergeDropsSlotsStaleRelativeToOurs)
{
    WindowedCounter fresh(seconds(8)), stale(seconds(8));
    stale.add(seconds(1), 10); // epoch 1
    fresh.add(seconds(9), 2);  // same ring slot, 8 epochs later
    fresh.merge(stale);
    // The stale shard's slot is outside the fresh window — dropped,
    // exactly as add() would have evicted it.
    EXPECT_EQ(fresh.inWindow(seconds(9)), 2u);
    EXPECT_EQ(fresh.total(), 12u); // totals always accumulate
}

TEST(DecayingGauge, FirstSampleSeedsEwma)
{
    DecayingGauge g(seconds(10));
    g.sample(seconds(1), 40.0);
    EXPECT_DOUBLE_EQ(g.ewma(), 40.0);
    EXPECT_DOUBLE_EQ(g.last(), 40.0);
    EXPECT_DOUBLE_EQ(g.min(), 40.0);
    EXPECT_DOUBLE_EQ(g.max(), 40.0);
}

TEST(DecayingGauge, EwmaDecaysTowardNewLevel)
{
    DecayingGauge g(seconds(10));
    g.sample(seconds(0), 100.0);
    g.sample(seconds(10), 0.0); // one tau later
    // After one time constant the EWMA has closed 1-1/e of the gap.
    EXPECT_NEAR(g.ewma(), 100.0 * std::exp(-1.0), 1e-9);
    EXPECT_DOUBLE_EQ(g.last(), 0.0);
    EXPECT_DOUBLE_EQ(g.min(), 0.0);
    EXPECT_DOUBLE_EQ(g.max(), 100.0);
    EXPECT_EQ(g.samples(), 2u);
}

TEST(DecayingGauge, EmptyGaugeReadsZero)
{
    DecayingGauge g;
    EXPECT_DOUBLE_EQ(g.ewma(), 0.0);
    EXPECT_DOUBLE_EQ(g.min(), 0.0);
    EXPECT_DOUBLE_EQ(g.max(), 0.0);
    EXPECT_EQ(g.samples(), 0u);
}

TEST(LatencyHistogram, MergeEqualsSingleHistogramOracle)
{
    LatencyHistogram oracle, a, b, c;
    std::mt19937 rng(11);
    for (int i = 0; i < 2000; ++i) {
        auto v = static_cast<SimDuration>(1 + rng() % 5'000'000);
        oracle.add(v);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
    }
    LatencyHistogram merged;
    merged.merge(a);
    merged.merge(b);
    merged.merge(c);

    EXPECT_EQ(merged.count(), oracle.count());
    EXPECT_DOUBLE_EQ(merged.sum(), oracle.sum());
    EXPECT_DOUBLE_EQ(merged.min(), oracle.min());
    EXPECT_DOUBLE_EQ(merged.max(), oracle.max());
    // Bucketed, so quantiles are *exactly* equal, not just close.
    EXPECT_DOUBLE_EQ(merged.p50(), oracle.p50());
    EXPECT_DOUBLE_EQ(merged.p95(), oracle.p95());
    EXPECT_DOUBLE_EQ(merged.p99(), oracle.p99());
}

TEST(LatencyHistogram, MergeOfEmptyIsIdentity)
{
    LatencyHistogram h, empty;
    h.add(usec(500));
    LatencyHistogram before = h;
    h.merge(empty);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), before.min());
    EXPECT_DOUBLE_EQ(h.max(), before.max());

    LatencyHistogram onto_empty;
    onto_empty.merge(h);
    EXPECT_EQ(onto_empty.count(), 1u);
    EXPECT_DOUBLE_EQ(onto_empty.p50(), h.p50());
}

} // namespace
} // namespace vcp
