/**
 * @file
 * Tests for the cloud director: deploy/undeploy workflows, quota
 * enforcement, failure cleanup, leases, churn accounting, and the
 * maintenance-evacuation workflow.
 */

#include "cloud_fixture.hh"

#include "sim/logging.hh"

namespace vcp {
namespace {

using DirectorTest = CloudFixture;

TEST_F(DirectorTest, DeployCreatesPoweredOnVms)
{
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    EXPECT_EQ(va->state, VAppState::Deployed);
    ASSERT_EQ(va->vms.size(), 2u); // template vm_count = 2
    for (VmId vm : va->vms) {
        EXPECT_EQ(inv().vm(vm).powerState(), PowerState::PoweredOn);
        EXPECT_EQ(inv().vm(vm).tenant, tenant0());
        EXPECT_EQ(inv().vm(vm).vapp, va->id);
        // Linked clone: delta disk backed by the pool seed.
        const VirtualDisk &d = inv().disk(inv().vm(vm).disks[0]);
        EXPECT_EQ(d.kind, DiskKind::LinkedCloneDelta);
    }
    EXPECT_EQ(cloud().deploysSucceeded(), 1u);
    EXPECT_EQ(cloud().vmsProvisioned(), 2u);
    EXPECT_EQ(cloud().tenant(tenant0()).vmsInUse(), 2);
}

TEST_F(DirectorTest, FullCloneDeployMovesData)
{
    Bytes before = srv().bytesMoved();
    auto va = deploy(tenant0(), /*linked=*/false);
    ASSERT_TRUE(va.has_value());
    EXPECT_EQ(va->state, VAppState::Deployed);
    // Two full clones of a 4 GiB-allocated master.
    EXPECT_EQ(srv().bytesMoved() - before, 2 * gib(4));
}

TEST_F(DirectorTest, DeployUnknownTenantRejected)
{
    DeployRequest req;
    req.tenant = TenantId(999999);
    req.tmpl = tmpl();
    EXPECT_FALSE(cloud().deployVApp(req).valid());
    EXPECT_EQ(cloud().deploysFailed(), 1u);
}

TEST_F(DirectorTest, DeployUnknownTemplateRejected)
{
    DeployRequest req;
    req.tenant = tenant0();
    req.tmpl = TemplateId(999999);
    EXPECT_FALSE(cloud().deployVApp(req).valid());
}

TEST_F(DirectorTest, QuotaRejectsOverLimitDeploys)
{
    // Quota is 20 VMs; each deploy takes 2.
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(deploy(tenant0()).has_value());
    EXPECT_EQ(cloud().tenant(tenant0()).vmsInUse(), 20);
    auto over = deploy(tenant0());
    EXPECT_FALSE(over.has_value());
    EXPECT_EQ(cs->stats().counter("cloud.deploys.quota_rejected")
                  .value(),
              1u);
    // Another tenant is unaffected.
    EXPECT_TRUE(deploy(tenant1()).has_value());
}

TEST_F(DirectorTest, UndeployDestroysVmsAndRefundsQuota)
{
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    std::vector<VmId> vms = va->vms;
    ASSERT_TRUE(undeploy(va->id));
    EXPECT_EQ(cloud().vapp(va->id).state, VAppState::Destroyed);
    for (VmId vm : vms)
        EXPECT_FALSE(inv().hasVm(vm));
    EXPECT_EQ(cloud().tenant(tenant0()).vmsInUse(), 0);
    EXPECT_EQ(cloud().vmsDestroyed(), 2u);
    EXPECT_EQ(cloud().undeploysCompleted(), 1u);
}

TEST_F(DirectorTest, UndeployReleasesBaseDiskRefs)
{
    auto va = deploy(tenant0());
    DiskId seed = cloud().pool().replicas(tmpl())[0].disk;
    EXPECT_EQ(inv().disk(seed).ref_count, 2);
    undeploy(va->id);
    EXPECT_EQ(inv().disk(seed).ref_count, 0);
}

TEST_F(DirectorTest, UndeployWrongStateRejected)
{
    auto va = deploy(tenant0());
    ASSERT_TRUE(undeploy(va->id));
    // Already destroyed.
    EXPECT_FALSE(cloud().undeployVApp(va->id));
    EXPECT_FALSE(cloud().undeployVApp(VAppId(424242)));
}

TEST_F(DirectorTest, LeaseExpiryUndeploysAutomatically)
{
    DeployRequest req;
    req.tenant = tenant0();
    req.tmpl = tmpl();
    req.lease = hours(2);
    std::optional<VApp> deployed;
    cloud().deployVApp(req, [&](const VApp &va) { deployed = va; });
    drain(); // deploy completes, lease armed
    ASSERT_TRUE(deployed.has_value());
    // The lease is armed when the deploy completes, i.e. a little
    // after the two-hour mark from the request.
    EXPECT_GE(deployed->lease_expiry, hours(2));
    EXPECT_LT(deployed->lease_expiry, hours(2) + minutes(10));
    EXPECT_EQ(cloud().leases().active(), 1u);
    sim().runUntil(hours(3));
    drain(); // drain the undeploy ops
    EXPECT_EQ(cloud().vapp(deployed->id).state, VAppState::Destroyed);
    EXPECT_EQ(cloud().leases().expirations(), 1u);
    EXPECT_EQ(cloud().tenant(tenant0()).vmsInUse(), 0);
}

TEST_F(DirectorTest, NegativeLeaseDisablesExpiry)
{
    DeployRequest req;
    req.tenant = tenant0();
    req.tmpl = tmpl();
    req.lease = -1;
    std::optional<VApp> deployed;
    cloud().deployVApp(req, [&](const VApp &va) { deployed = va; });
    drain();
    ASSERT_TRUE(deployed.has_value());
    EXPECT_EQ(deployed->lease_expiry, 0);
    EXPECT_EQ(cloud().leases().active(), 0u);
}

TEST_F(DirectorTest, FailedDeployCleansUpAndRefunds)
{
    // Exhaust datastore space so clones fail.
    for (DatastoreId ds : cs->datastoreIds())
        inv().datastore(ds).reserve(inv().datastore(ds).free());
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    EXPECT_EQ(va->state, VAppState::DeployFailed);
    drain(); // automatic cleanup
    EXPECT_EQ(cloud().vapp(va->id).state, VAppState::Destroyed);
    EXPECT_EQ(cloud().tenant(tenant0()).vmsInUse(), 0);
    EXPECT_EQ(cloud().deploysFailed(), 1u);
    // No stray VM records beyond the golden master.
    EXPECT_EQ(inv().numVms(), 1u);
}

TEST_F(DirectorTest, LazyPoolReplicationUnblocksDeploys)
{
    // Saturate the seed replica; the next deploy must trigger a
    // replication and still succeed.
    DiskId seed = cloud().pool().replicas(tmpl())[0].disk;
    inv().disk(seed).ref_count =
        cloud().pool().config().max_clones_per_base;
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    EXPECT_EQ(va->state, VAppState::Deployed);
    EXPECT_GE(cloud().pool().replicationsSucceeded(), 1u);
    EXPECT_EQ(cloud().pool().replicas(tmpl()).size(), 2u);
}

TEST_F(DirectorTest, ChurnSeriesRecordProvisioning)
{
    TimeSeries prov(hours(1)), destr(hours(1));
    cloud().setChurnSeries(&prov, &destr);
    auto va = deploy(tenant0());
    undeploy(va->id);
    EXPECT_EQ(prov.totalCount(), 2u);
    EXPECT_EQ(destr.totalCount(), 2u);
}

TEST_F(DirectorTest, DeployLatencyHistogramPopulated)
{
    deploy(tenant0());
    EXPECT_EQ(
        cs->stats().histogram("cloud.deploy_latency_us").count(),
        1u);
    EXPECT_GT(cs->stats().histogram("cloud.deploy_latency_us").mean(),
              0.0);
}

TEST_F(DirectorTest, EnterMaintenanceEvacuatesVms)
{
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    // Find a host with at least one powered-on VM.
    HostId victim;
    for (HostId h : cs->hostIds()) {
        if (inv().host(h).numVms() > 0) {
            victim = h;
            break;
        }
    }
    ASSERT_TRUE(victim.valid());
    std::optional<bool> result;
    cloud().enterMaintenance(victim, [&](bool ok) { result = ok; });
    drain();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(*result);
    EXPECT_TRUE(inv().host(victim).inMaintenance());
    EXPECT_EQ(inv().host(victim).numVms(), 0u);
    // The vApp's VMs are all still powered on, elsewhere.
    for (VmId vm : va->vms) {
        EXPECT_EQ(inv().vm(vm).powerState(), PowerState::PoweredOn);
        EXPECT_NE(inv().vm(vm).host, victim);
    }
}

TEST_F(DirectorTest, EnterMaintenanceOfEmptyHostIsDirect)
{
    HostId empty;
    for (HostId h : cs->hostIds()) {
        if (inv().host(h).numVms() == 0) {
            empty = h;
            break;
        }
    }
    ASSERT_TRUE(empty.valid());
    std::optional<bool> result;
    cloud().enterMaintenance(empty, [&](bool ok) { result = ok; });
    drain();
    EXPECT_TRUE(result.value_or(false));
    EXPECT_TRUE(inv().host(empty).inMaintenance());
}

TEST_F(DirectorTest, EnterMaintenanceUnknownHostFails)
{
    std::optional<bool> result;
    cloud().enterMaintenance(HostId(999999),
                             [&](bool ok) { result = ok; });
    EXPECT_FALSE(result.value_or(true));
}

TEST_F(DirectorTest, CreateTemplateValidatesFill)
{
    EXPECT_THROW(cloud().createTemplate("bad", cs->datastoreIds()[0],
                                        gib(8), 0.0, 1, gib(2), 1,
                                        hours(1)),
                 FatalError);
    EXPECT_THROW(cloud().createTemplate("bad", cs->datastoreIds()[0],
                                        gib(8), 1.5, 1, gib(2), 1,
                                        hours(1)),
                 FatalError);
}

TEST_F(DirectorTest, UnknownTenantLookupPanics)
{
    EXPECT_THROW(cloud().tenant(TenantId(31337)), PanicError);
    EXPECT_THROW(cloud().vapp(VAppId(31337)), PanicError);
}

} // namespace
} // namespace vcp
