/**
 * @file
 * Tests for the storage rebalancer.
 */

#include "cloud_fixture.hh"

#include "cloud/storage_rebalancer.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

class RebalancerTest : public CloudFixture
{
  protected:
    /** Create a powered-off flat-disk VM on a specific datastore. */
    VmId
    coldVm(DatastoreId ds, Bytes size)
    {
        VmConfig vc;
        vc.name = "cold";
        vc.memory = gib(1);
        VmId vm = inv().createVm(vc);
        DiskConfig dc;
        dc.kind = DiskKind::Flat;
        dc.datastore = ds;
        dc.capacity = size;
        dc.owner = vm;
        DiskId d = inv().createDisk(dc);
        EXPECT_TRUE(d.valid());
        inv().vm(vm).disks.push_back(d);
        HostId h = cs->hostIds()[0];
        inv().vm(vm).host = h;
        inv().host(h).registerVm(vm);
        return vm;
    }

    DatastoreId ds0() { return cs->datastoreIds()[0]; }
    DatastoreId ds1() { return cs->datastoreIds()[1]; }
};

TEST_F(RebalancerTest, IdleWhenBalanced)
{
    StorageRebalancer rb(srv());
    int issued = -1;
    rb.runOnce([&](int n) { issued = n; });
    drain();
    EXPECT_EQ(issued, 0);
    EXPECT_EQ(rb.movesIssued(), 0u);
    EXPECT_EQ(rb.scans(), 1u);
}

TEST_F(RebalancerTest, MovesColdVmsOffHotDatastore)
{
    // Load ds0 with ~120 GiB of cold VMs (capacity 256 GiB each).
    for (int i = 0; i < 6; ++i)
        coldVm(ds0(), gib(20));
    ASSERT_GT(StorageRebalancer(srv()).utilizationSpread(), 0.15);

    RebalanceConfig cfg;
    cfg.max_moves_per_scan = 4;
    StorageRebalancer rb(srv(), cfg);
    int issued = -1;
    rb.runOnce([&](int n) { issued = n; });
    drain();
    EXPECT_GT(issued, 0);
    EXPECT_EQ(rb.movesSucceeded(), rb.movesIssued());
    EXPECT_GT(rb.bytesRebalanced(), 0);
    // Spread narrowed.
    EXPECT_LT(inv().datastore(ds0()).used(), 6 * gib(20) + gib(5));
    EXPECT_GT(inv().datastore(ds1()).used(), 0);
}

TEST_F(RebalancerTest, RespectsMoveCapPerScan)
{
    for (int i = 0; i < 8; ++i)
        coldVm(ds0(), gib(20));
    RebalanceConfig cfg;
    cfg.max_moves_per_scan = 1;
    StorageRebalancer rb(srv(), cfg);
    rb.runOnce();
    drain();
    EXPECT_EQ(rb.movesIssued(), 1u);
}

TEST_F(RebalancerTest, SkipsPoweredOnAndLinkedCloneVms)
{
    // A deployed (powered-on, linked-clone) vApp on whatever DS the
    // placement chose, plus heavy imbalance from template-side
    // reservations.
    deploy(tenant0());
    inv().datastore(ds0()).reserve(gib(120));
    StorageRebalancer rb(srv());
    int issued = -1;
    rb.runOnce([&](int n) { issued = n; });
    drain();
    // Nothing eligible: the only real VMs are powered-on linked
    // clones.
    EXPECT_EQ(issued, 0);
    inv().datastore(ds0()).release(gib(120));
}

TEST_F(RebalancerTest, PeriodicModeScansRepeatedly)
{
    RebalanceConfig cfg;
    cfg.period = minutes(10);
    StorageRebalancer rb(srv(), cfg);
    rb.start();
    sim().runUntil(minutes(35));
    EXPECT_EQ(rb.scans(), 3u);
    rb.stop();
    sim().runUntil(hours(2));
    EXPECT_EQ(rb.scans(), 3u);
}

TEST_F(RebalancerTest, InvalidConfigFatal)
{
    RebalanceConfig cfg;
    cfg.imbalance_threshold = 0.0;
    EXPECT_THROW(StorageRebalancer(srv(), cfg), FatalError);
    cfg = RebalanceConfig();
    cfg.max_moves_per_scan = 0;
    EXPECT_THROW(StorageRebalancer(srv(), cfg), FatalError);
}

} // namespace
} // namespace vcp
