/**
 * @file
 * Shared fixture for cloud-layer tests: a small CloudSimulation
 * (4 hosts, 2 datastores, 2 tenants, 1 template) with helpers for
 * synchronous deploys.
 */

#ifndef VCP_TESTS_CLOUD_FIXTURE_HH
#define VCP_TESTS_CLOUD_FIXTURE_HH

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "workload/profiles.hh"

namespace vcp {

class CloudFixture : public ::testing::Test
{
  protected:
    CloudFixture() { build(makeSpec()); }

    static CloudSetupSpec
    makeSpec()
    {
        CloudSetupSpec s;
        s.name = "test-cloud";
        s.infra.hosts = 4;
        s.infra.host.cores = 16;
        s.infra.host.memory = gib(64);
        s.infra.datastores = 2;
        s.infra.ds_capacity = gib(256);
        s.infra.ds_copy_bandwidth = 100.0 * 1024 * 1024;

        TenantConfig t;
        t.name = "org0";
        t.vm_quota = 20;
        s.tenants.push_back(t);
        t.name = "org1";
        t.vm_quota = 20;
        s.tenants.push_back(t);

        s.templates = {
            {"tmpl", gib(8), 0.5, 1, gib(2), 2, hours(8)},
        };
        s.director.pool.max_clones_per_base = 32;
        s.workload.duration = hours(1);
        return s;
    }

    void
    build(const CloudSetupSpec &spec)
    {
        cs = std::make_unique<CloudSimulation>(spec, /*seed=*/7);
    }

    CloudDirector &cloud() { return cs->cloud(); }
    Inventory &inv() { return cs->inventory(); }
    Simulator &sim() { return cs->sim(); }
    ManagementServer &srv() { return cs->server(); }

    /**
     * Run the simulation for a bounded window (in-flight operations
     * complete in well under this).  Unlike Simulator::run(), this
     * terminates even with recurring events armed (aggressive pool
     * scans) or far-future lease expirations pending.
     */
    void drain(SimDuration window = minutes(30))
    {
        sim().runUntil(sim().now() + window);
    }

    TenantId tenant0() { return cs->tenantIds()[0]; }
    TenantId tenant1() { return cs->tenantIds()[1]; }
    TemplateId tmpl() { return cs->templateIds()[0]; }

    /** Deploy synchronously; returns the terminal-state vApp. */
    std::optional<VApp>
    deploy(TenantId tenant, bool linked = true)
    {
        DeployRequest req;
        req.tenant = tenant;
        req.tmpl = tmpl();
        req.linked = linked;
        std::optional<VApp> result;
        VAppId id =
            cloud().deployVApp(req, [&](const VApp &va) { result = va; });
        if (!id.valid())
            return std::nullopt;
        drain();
        EXPECT_TRUE(result.has_value());
        return result;
    }

    /** Undeploy synchronously. */
    bool
    undeploy(VAppId id)
    {
        bool done = false;
        bool ok = cloud().undeployVApp(
            id, [&](const VApp &) { done = true; });
        if (!ok)
            return false;
        drain();
        EXPECT_TRUE(done);
        return true;
    }

    std::unique_ptr<CloudSimulation> cs;
};

} // namespace vcp

#endif // VCP_TESTS_CLOUD_FIXTURE_HH
