/**
 * @file
 * Tests for the control-plane federation.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cloud/federation.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

FederationConfig
smallFederation(int shards)
{
    FederationConfig cfg;
    cfg.shards = shards;
    cfg.hosts_per_shard = 2;
    cfg.host.cores = 16;
    cfg.host.memory = gib(64);
    cfg.datastores_per_shard = 1;
    cfg.datastore.capacity = gib(256);
    return cfg;
}

class FederationTest : public ::testing::Test
{
  protected:
    FederationTest()
        : sim(11), fed(sim, stats, smallFederation(3))
    {
        tenant = fed.addTenant({"org", 0});
        tmpl = fed.createTemplate("tmpl", gib(4), 0.5, 1, gib(1), 1,
                                  hours(24));
    }

    Simulator sim;
    StatRegistry stats;
    CloudFederation fed{sim, stats, smallFederation(3)};
    std::size_t tenant = 0;
    std::size_t tmpl = 0;
};

TEST_F(FederationTest, ShardsAreIndependentStacks)
{
    ASSERT_EQ(fed.numShards(), 3u);
    for (std::size_t s = 0; s < 3; ++s) {
        EXPECT_EQ(fed.shardServer(s).inventory().numHosts(), 2u);
        EXPECT_EQ(fed.shardServer(s).inventory().numDatastores(), 1u);
        // Each shard has its own golden master.
        EXPECT_EQ(fed.shardServer(s).inventory().numVms(), 1u);
    }
}

TEST_F(FederationTest, DeployRoutesAndSucceeds)
{
    std::optional<VApp> result;
    int shard = fed.deploy(tenant, tmpl,
                           [&](const VApp &va) { result = va; });
    ASSERT_GE(shard, 0);
    sim.run();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->state, VAppState::Deployed);
    EXPECT_EQ(fed.deploysRouted(), 1u);
    EXPECT_EQ(fed.vmsProvisioned(), 1u);
}

TEST_F(FederationTest, LeastLoadedSpreadsAcrossShards)
{
    // Burst-routed: the pending ledger must spread the deploys even
    // though none has provisioned yet.
    std::vector<int> per_shard(3, 0);
    for (int i = 0; i < 9; ++i) {
        int s = fed.deploy(tenant, tmpl);
        ASSERT_GE(s, 0);
        per_shard[static_cast<std::size_t>(s)] += 1;
    }
    for (int c : per_shard)
        EXPECT_EQ(c, 3);
    // And everything completes.
    sim.runUntil(hours(1));
    EXPECT_EQ(fed.vmsProvisioned(), 9u);
}

TEST_F(FederationTest, RoundRobinRotates)
{
    Simulator sim2(5);
    StatRegistry stats2;
    FederationConfig cfg = smallFederation(3);
    cfg.routing = ShardRouting::RoundRobin;
    CloudFederation rr(sim2, stats2, cfg);
    std::size_t t = rr.addTenant({"org", 0});
    std::size_t m =
        rr.createTemplate("x", gib(4), 0.5, 1, gib(1), 1, hours(1));
    EXPECT_EQ(rr.deploy(t, m), 0);
    EXPECT_EQ(rr.deploy(t, m), 1);
    EXPECT_EQ(rr.deploy(t, m), 2);
    EXPECT_EQ(rr.deploy(t, m), 0);
}

TEST_F(FederationTest, BadIndicesRejected)
{
    EXPECT_EQ(fed.deploy(99, tmpl), -1);
    EXPECT_EQ(fed.deploy(tenant, 99), -1);
}

TEST_F(FederationTest, ControlPlaneResourcesMultiply)
{
    // Two federations, same total hardware, different shard counts:
    // the sharded one has K independent dispatch queues.  Drive both
    // with a synchronized burst and compare makespan.
    auto makespan = [](int shards, int hosts_per_shard) {
        Simulator s(7);
        StatRegistry st;
        FederationConfig cfg = smallFederation(shards);
        cfg.hosts_per_shard = hosts_per_shard;
        cfg.server.dispatch_width = 4; // small: the shared choke
        CloudFederation f(s, st, cfg);
        std::size_t t = f.addTenant({"org", 0});
        std::size_t m = f.createTemplate("x", gib(4), 0.5, 1, gib(1),
                                         1, hours(24));
        int pending = 48;
        SimTime done = 0;
        for (int i = 0; i < 48; ++i) {
            f.deploy(t, m, [&](const VApp &va) {
                EXPECT_EQ(va.state, VAppState::Deployed);
                if (--pending == 0)
                    done = s.now();
            });
        }
        s.run();
        EXPECT_EQ(pending, 0);
        return done;
    };
    SimTime one_shard = makespan(1, 8);
    SimTime four_shards = makespan(4, 2);
    EXPECT_GT(one_shard, 2 * four_shards);
}

TEST_F(FederationTest, InvalidConfigFatal)
{
    Simulator s(1);
    StatRegistry st;
    FederationConfig cfg = smallFederation(0);
    EXPECT_THROW(CloudFederation(s, st, cfg), FatalError);
}

/** Engine-bound federation: run the same burst under the merge
 *  oracle and under real threads; every per-shard registry must come
 *  out byte-identical (share-nothing stacks are shard-closed). */
TEST_F(FederationTest, EngineThreadedMatchesMergeOracle)
{
    auto runFed = [](ShardExecMode mode) {
        ShardedSimulator::Options o;
        o.mode = mode;
        ShardedSimulator eng(3, 11, o);
        StatRegistry st;
        FederationConfig cfg = smallFederation(3);
        cfg.engine = &eng;
        CloudFederation f(eng.shard(0), st, cfg);
        std::size_t t = f.addTenant({"org", 0});
        std::size_t m = f.createTemplate("x", gib(4), 0.5, 1,
                                         gib(1), 1, hours(24));
        for (int i = 0; i < 12; ++i)
            EXPECT_GE(f.deploy(t, m), 0);
        eng.runUntil(hours(2));
        std::vector<std::string> csv;
        for (std::size_t s = 0; s < f.numShards(); ++s)
            csv.push_back(f.shardStats(s).toCsv());
        return std::tuple(f.vmsProvisioned(), f.opsCompleted(),
                          eng.eventsProcessed(), csv);
    };
    auto merge = runFed(ShardExecMode::Merge);
    auto threaded = runFed(ShardExecMode::Threaded);
    EXPECT_EQ(std::get<0>(merge), 12u);
    EXPECT_EQ(merge, threaded);
}

TEST_F(FederationTest, EngineThreadedRunsAreDeterministic)
{
    auto runOnce = [] {
        ShardedSimulator::Options o;
        o.mode = ShardExecMode::Threaded;
        ShardedSimulator eng(2, 7, o);
        StatRegistry st;
        FederationConfig cfg = smallFederation(2);
        cfg.engine = &eng;
        cfg.routing = ShardRouting::RoundRobin;
        CloudFederation f(eng.shard(0), st, cfg);
        std::size_t t = f.addTenant({"org", 0});
        std::size_t m = f.createTemplate("x", gib(4), 0.5, 1,
                                         gib(1), 1, hours(24));
        for (int i = 0; i < 8; ++i)
            f.deploy(t, m);
        eng.runUntil(hours(2));
        return f.shardStats(0).toCsv() + f.shardStats(1).toCsv();
    };
    std::string first = runOnce();
    for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(runOnce(), first) << "rep " << rep;
}

TEST_F(FederationTest, EngineShardsGetPrivateRegistries)
{
    ShardedSimulator eng(2, 3);
    StatRegistry st;
    FederationConfig cfg = smallFederation(2);
    cfg.engine = &eng;
    CloudFederation f(eng.shard(0), st, cfg);
    EXPECT_NE(&f.shardStats(0), &st);
    EXPECT_NE(&f.shardStats(0), &f.shardStats(1));
    // Without an engine the shared registry is used as before.
    EXPECT_EQ(&fed.shardStats(0), &stats);
}

TEST_F(FederationTest, RoutingNames)
{
    EXPECT_STREQ(shardRoutingName(ShardRouting::RoundRobin),
                 "round-robin");
    EXPECT_STREQ(shardRoutingName(ShardRouting::LeastLoaded),
                 "least-loaded");
}

} // namespace
} // namespace vcp
