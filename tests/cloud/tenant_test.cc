/**
 * @file
 * Tests for tenants, the catalog, vApp state names, and the lease
 * manager.
 */

#include <gtest/gtest.h>

#include "cloud/catalog.hh"
#include "cloud/lease_manager.hh"
#include "cloud/tenant.hh"
#include "cloud/vapp.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

TEST(TenantTest, QuotaEnforcement)
{
    Tenant t(TenantId(1), {"org", 5});
    EXPECT_TRUE(t.withinQuota(5));
    EXPECT_FALSE(t.withinQuota(6));
    t.chargeVms(3);
    EXPECT_EQ(t.vmsInUse(), 3);
    EXPECT_TRUE(t.withinQuota(2));
    EXPECT_FALSE(t.withinQuota(3));
    t.refundVms(3);
    EXPECT_EQ(t.vmsInUse(), 0);
}

TEST(TenantTest, UnlimitedQuota)
{
    Tenant t(TenantId(1), {"org", 0});
    t.chargeVms(100000);
    EXPECT_TRUE(t.withinQuota(100000));
}

TEST(TenantTest, RefundClampsAtZero)
{
    Tenant t(TenantId(1), {"org", 5});
    t.chargeVms(1);
    t.refundVms(3);
    EXPECT_EQ(t.vmsInUse(), 0);
}

TEST(TenantTest, DeployCountersAccumulate)
{
    Tenant t(TenantId(1), {"org", 5});
    t.noteDeployRequested();
    t.noteDeploySucceeded();
    t.noteDeployRequested();
    t.noteDeployFailed();
    EXPECT_EQ(t.deploysRequested(), 2u);
    EXPECT_EQ(t.deploysSucceeded(), 1u);
    EXPECT_EQ(t.deploysFailed(), 1u);
}

TEST(CatalogTest, AddAndGet)
{
    Catalog c;
    VAppTemplate t;
    t.id = TemplateId(1);
    t.name = "x";
    t.vm_count = 3;
    c.add(t);
    EXPECT_TRUE(c.has(TemplateId(1)));
    EXPECT_EQ(c.get(TemplateId(1)).vm_count, 3);
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c.ids().size(), 1u);
}

TEST(CatalogTest, DuplicateAndInvalidRejected)
{
    Catalog c;
    VAppTemplate t;
    t.id = TemplateId(1);
    t.vm_count = 1;
    c.add(t);
    EXPECT_THROW(c.add(t), PanicError);

    VAppTemplate bad;
    EXPECT_THROW(c.add(bad), PanicError); // invalid id

    VAppTemplate zero;
    zero.id = TemplateId(2);
    zero.vm_count = 0;
    EXPECT_THROW(c.add(zero), FatalError);
}

TEST(CatalogTest, MissingLookupPanics)
{
    Catalog c;
    EXPECT_THROW(c.get(TemplateId(9)), PanicError);
}

TEST(VAppTest, StateNames)
{
    EXPECT_STREQ(vappStateName(VAppState::Deploying), "deploying");
    EXPECT_STREQ(vappStateName(VAppState::Deployed), "deployed");
    EXPECT_STREQ(vappStateName(VAppState::DeployFailed),
                 "deploy-failed");
    EXPECT_STREQ(vappStateName(VAppState::Destroyed), "destroyed");
}

TEST(LeaseManagerTest, FiresAtExpiry)
{
    Simulator sim;
    std::vector<VAppId> expired;
    LeaseManager lm(sim, [&](VAppId id) { expired.push_back(id); });
    lm.schedule(VAppId(1), hours(2));
    lm.schedule(VAppId(2), hours(1));
    EXPECT_EQ(lm.active(), 2u);
    sim.run();
    ASSERT_EQ(expired.size(), 2u);
    EXPECT_EQ(expired[0], VAppId(2));
    EXPECT_EQ(expired[1], VAppId(1));
    EXPECT_EQ(lm.expirations(), 2u);
    EXPECT_EQ(lm.active(), 0u);
}

TEST(LeaseManagerTest, CancelPreventsExpiry)
{
    Simulator sim;
    int fired = 0;
    LeaseManager lm(sim, [&](VAppId) { ++fired; });
    lm.schedule(VAppId(1), hours(1));
    EXPECT_TRUE(lm.cancel(VAppId(1)));
    EXPECT_FALSE(lm.cancel(VAppId(1)));
    sim.run();
    EXPECT_EQ(fired, 0);
}

TEST(LeaseManagerTest, RescheduleReplacesOldLease)
{
    Simulator sim;
    std::vector<SimTime> fire_times;
    LeaseManager lm(sim,
                    [&](VAppId) { fire_times.push_back(sim.now()); });
    lm.schedule(VAppId(1), hours(1));
    lm.schedule(VAppId(1), hours(3)); // renewal
    sim.run();
    ASSERT_EQ(fire_times.size(), 1u);
    EXPECT_EQ(fire_times[0], hours(3));
}

TEST(LeaseManagerTest, RequiresCallback)
{
    Simulator sim;
    EXPECT_THROW(LeaseManager(sim, nullptr), PanicError);
}

} // namespace
} // namespace vcp
