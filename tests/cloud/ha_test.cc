/**
 * @file
 * Tests for the HA manager (crash / boot-storm recovery) and the
 * failure injector.
 */

#include "cloud_fixture.hh"

#include "cloud/ha_manager.hh"
#include "workload/failures.hh"

namespace vcp {
namespace {

class HaTest : public CloudFixture
{
  protected:
    /** Host with the most powered-on VMs. */
    HostId
    busiestHost()
    {
        HostId best;
        std::size_t most = 0;
        for (HostId h : cs->hostIds()) {
            std::size_t on = 0;
            for (VmId vm : inv().host(h).vms()) {
                if (inv().vm(vm).powerState() ==
                    PowerState::PoweredOn)
                    ++on;
            }
            if (on > most) {
                most = on;
                best = h;
            }
        }
        return best;
    }
};

TEST_F(HaTest, CrashForcesVmsOffAndDisconnects)
{
    deploy(tenant0());
    HaManager ha(srv());
    HostId victim = busiestHost();
    ASSERT_TRUE(victim.valid());
    int committed_before = inv().host(victim).committedVcpus();
    ASSERT_GT(committed_before, 0);

    std::size_t downed = ha.crashHost(victim);
    EXPECT_GT(downed, 0u);
    EXPECT_FALSE(inv().host(victim).connected());
    EXPECT_EQ(inv().host(victim).committedVcpus(), 0);
    EXPECT_TRUE(ha.isCrashed(victim));
    for (VmId vm : inv().host(victim).vms()) {
        EXPECT_NE(inv().vm(vm).powerState(), PowerState::PoweredOn);
    }
    EXPECT_EQ(ha.crashes(), 1u);
    EXPECT_EQ(ha.vmsCrashed(), downed);
}

TEST_F(HaTest, CrashTwiceIsIdempotent)
{
    deploy(tenant0());
    HaManager ha(srv());
    HostId victim = busiestHost();
    ha.crashHost(victim);
    EXPECT_EQ(ha.crashHost(victim), 0u);
    EXPECT_EQ(ha.crashes(), 1u);
}

TEST_F(HaTest, RecoveryReconnectsAndRestartsVms)
{
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    HaManager ha(srv());
    HostId victim = busiestHost();
    std::size_t downed = ha.crashHost(victim);
    ASSERT_GT(downed, 0u);

    std::optional<bool> result;
    ha.recoverHost(victim, [&](bool ok) { result = ok; });
    drain();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(*result);
    EXPECT_TRUE(inv().host(victim).connected());
    EXPECT_FALSE(ha.isCrashed(victim));
    EXPECT_EQ(ha.vmsRestarted(), downed);
    // Every vApp VM is powered on again.
    for (VmId vm : va->vms)
        EXPECT_EQ(inv().vm(vm).powerState(), PowerState::PoweredOn);
}

TEST_F(HaTest, RecoverUncrashedHostFails)
{
    HaManager ha(srv());
    std::optional<bool> result;
    ha.recoverHost(cs->hostIds()[0], [&](bool ok) { result = ok; });
    EXPECT_FALSE(result.value_or(true));
}

TEST_F(HaTest, RecoverySkipsVmsDestroyedDuringOutage)
{
    auto va = deploy(tenant0());
    HaManager ha(srv());
    HostId victim = busiestHost();
    ha.crashHost(victim);
    // Tear the vApp down while its host is dark (its VMs are off,
    // so the destroy goes through).
    ASSERT_TRUE(undeploy(va->id));
    std::optional<bool> result;
    ha.recoverHost(victim, [&](bool ok) { result = ok; });
    drain();
    EXPECT_TRUE(result.value_or(false));
    EXPECT_EQ(ha.restartFailures(), 0u);
}

TEST_F(HaTest, FailureInjectorDrivesOutagesAndRecoveries)
{
    deploy(tenant0());
    deploy(tenant1());
    HaManager ha(srv());
    FailureConfig fcfg;
    fcfg.mtbf = minutes(30);
    fcfg.outage_mean = minutes(5);
    FailureInjector inj(ha, fcfg, Rng(5));
    inj.start();
    sim().runUntil(hours(6));
    EXPECT_GT(inj.outages(), 3u);
    EXPECT_GT(inj.recoveries(), 2u);
    EXPECT_EQ(inj.recoveries(),
              ha.crashes() - (ha.isCrashed(cs->hostIds()[0]) ||
                                      ha.isCrashed(cs->hostIds()[1]) ||
                                      ha.isCrashed(cs->hostIds()[2]) ||
                                      ha.isCrashed(cs->hostIds()[3])
                                  ? 1u
                                  : 0u));
    inj.stop();
}

TEST_F(HaTest, StopMidOutageSuppressesScheduledRecovery)
{
    deploy(tenant0());
    HaManager ha(srv());
    FailureConfig fcfg;
    fcfg.mtbf = minutes(10);
    // Enormous outage mean so the recovery event is armed far in the
    // future — stop() lands squarely inside the outage window.
    fcfg.outage_mean = hours(50);
    FailureInjector inj(ha, fcfg, Rng(7));
    inj.start();
    while (inj.outages() == 0 && sim().now() < hours(24))
        drain(minutes(10));
    ASSERT_GT(inj.outages(), 0u);
    inj.stop();

    // Run far past every armed recovery: a stopped injector must not
    // mutate the cloud any more, so the host simply stays down.
    sim().runUntil(sim().now() + hours(500));
    EXPECT_EQ(inj.recoveries(), 0u);
    bool any_down = false;
    for (HostId h : cs->hostIds())
        any_down = any_down || ha.isCrashed(h);
    EXPECT_TRUE(any_down);
}

TEST_F(HaTest, SecondCrashDuringRestartDoesNotDoubleCount)
{
    HaManager ha(srv());
    // Hand-place one powered-on VM on an otherwise idle host so the
    // recovery boot storm is exactly one PowerOn we can interrupt.
    HostId victim = cs->hostIds()[0];
    VmConfig vc;
    vc.name = "solo";
    vc.vcpus = 1;
    vc.memory = gib(2);
    VmId vm = inv().createVm(vc);
    inv().vm(vm).host = victim;
    inv().host(victim).registerVm(vm);
    OpRequest on;
    on.type = OpType::PowerOn;
    on.vm = vm;
    std::optional<Task> boot;
    srv().submit(on, [&](const Task &t) { boot = t; });
    drain();
    ASSERT_TRUE(boot.has_value() && boot->succeeded());

    ASSERT_EQ(ha.crashHost(victim), 1u);
    ha.recoverHost(victim);

    // Step until the restart's PowerOn is mid-flight (the VM is
    // PoweringOn), then yank the host again.
    bool crashed_again = false;
    for (int i = 0; i < 7200 && !crashed_again; ++i) {
        sim().runUntil(sim().now() + seconds(1));
        if (inv().vm(vm).powerState() == PowerState::PoweringOn) {
            ha.crashHost(victim);
            crashed_again = true;
        }
    }
    ASSERT_TRUE(crashed_again);
    drain(hours(1));

    // The interrupted restart must fail (the VM is off again), not
    // count as a phantom success that the next recovery double-counts.
    EXPECT_EQ(ha.vmsRestarted(), 0u);
    EXPECT_EQ(ha.restartFailures(), 1u);
    EXPECT_EQ(inv().vm(vm).powerState(), PowerState::PoweredOff);
    EXPECT_TRUE(ha.isCrashed(victim));
    EXPECT_EQ(inv().host(victim).committedVcpus(), 0);

    std::optional<bool> result;
    ha.recoverHost(victim, [&](bool ok) { result = ok; });
    drain(hours(1));
    ASSERT_TRUE(result.value_or(false));
    EXPECT_EQ(ha.vmsRestarted(), 1u);
    EXPECT_EQ(inv().vm(vm).powerState(), PowerState::PoweredOn);
    EXPECT_EQ(inv().host(victim).committedVcpus(), 1);
}

TEST_F(HaTest, InjectorDisabledWithZeroMtbf)
{
    HaManager ha(srv());
    FailureConfig fcfg;
    fcfg.mtbf = 0;
    FailureInjector inj(ha, fcfg, Rng(5));
    inj.start();
    sim().runUntil(hours(10));
    EXPECT_EQ(inj.outages(), 0u);
}

} // namespace
} // namespace vcp
