/**
 * @file
 * Tests for the HA manager (crash / boot-storm recovery) and the
 * failure injector.
 */

#include "cloud_fixture.hh"

#include "cloud/ha_manager.hh"
#include "workload/failures.hh"

namespace vcp {
namespace {

class HaTest : public CloudFixture
{
  protected:
    /** Host with the most powered-on VMs. */
    HostId
    busiestHost()
    {
        HostId best;
        std::size_t most = 0;
        for (HostId h : cs->hostIds()) {
            std::size_t on = 0;
            for (VmId vm : inv().host(h).vms()) {
                if (inv().vm(vm).powerState() ==
                    PowerState::PoweredOn)
                    ++on;
            }
            if (on > most) {
                most = on;
                best = h;
            }
        }
        return best;
    }
};

TEST_F(HaTest, CrashForcesVmsOffAndDisconnects)
{
    deploy(tenant0());
    HaManager ha(srv());
    HostId victim = busiestHost();
    ASSERT_TRUE(victim.valid());
    int committed_before = inv().host(victim).committedVcpus();
    ASSERT_GT(committed_before, 0);

    std::size_t downed = ha.crashHost(victim);
    EXPECT_GT(downed, 0u);
    EXPECT_FALSE(inv().host(victim).connected());
    EXPECT_EQ(inv().host(victim).committedVcpus(), 0);
    EXPECT_TRUE(ha.isCrashed(victim));
    for (VmId vm : inv().host(victim).vms()) {
        EXPECT_NE(inv().vm(vm).powerState(), PowerState::PoweredOn);
    }
    EXPECT_EQ(ha.crashes(), 1u);
    EXPECT_EQ(ha.vmsCrashed(), downed);
}

TEST_F(HaTest, CrashTwiceIsIdempotent)
{
    deploy(tenant0());
    HaManager ha(srv());
    HostId victim = busiestHost();
    ha.crashHost(victim);
    EXPECT_EQ(ha.crashHost(victim), 0u);
    EXPECT_EQ(ha.crashes(), 1u);
}

TEST_F(HaTest, RecoveryReconnectsAndRestartsVms)
{
    auto va = deploy(tenant0());
    ASSERT_TRUE(va.has_value());
    HaManager ha(srv());
    HostId victim = busiestHost();
    std::size_t downed = ha.crashHost(victim);
    ASSERT_GT(downed, 0u);

    std::optional<bool> result;
    ha.recoverHost(victim, [&](bool ok) { result = ok; });
    drain();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(*result);
    EXPECT_TRUE(inv().host(victim).connected());
    EXPECT_FALSE(ha.isCrashed(victim));
    EXPECT_EQ(ha.vmsRestarted(), downed);
    // Every vApp VM is powered on again.
    for (VmId vm : va->vms)
        EXPECT_EQ(inv().vm(vm).powerState(), PowerState::PoweredOn);
}

TEST_F(HaTest, RecoverUncrashedHostFails)
{
    HaManager ha(srv());
    std::optional<bool> result;
    ha.recoverHost(cs->hostIds()[0], [&](bool ok) { result = ok; });
    EXPECT_FALSE(result.value_or(true));
}

TEST_F(HaTest, RecoverySkipsVmsDestroyedDuringOutage)
{
    auto va = deploy(tenant0());
    HaManager ha(srv());
    HostId victim = busiestHost();
    ha.crashHost(victim);
    // Tear the vApp down while its host is dark (its VMs are off,
    // so the destroy goes through).
    ASSERT_TRUE(undeploy(va->id));
    std::optional<bool> result;
    ha.recoverHost(victim, [&](bool ok) { result = ok; });
    drain();
    EXPECT_TRUE(result.value_or(false));
    EXPECT_EQ(ha.restartFailures(), 0u);
}

TEST_F(HaTest, FailureInjectorDrivesOutagesAndRecoveries)
{
    deploy(tenant0());
    deploy(tenant1());
    HaManager ha(srv());
    FailureConfig fcfg;
    fcfg.mtbf = minutes(30);
    fcfg.outage_mean = minutes(5);
    FailureInjector inj(ha, fcfg, Rng(5));
    inj.start();
    sim().runUntil(hours(6));
    EXPECT_GT(inj.outages(), 3u);
    EXPECT_GT(inj.recoveries(), 2u);
    EXPECT_EQ(inj.recoveries(),
              ha.crashes() - (ha.isCrashed(cs->hostIds()[0]) ||
                                      ha.isCrashed(cs->hostIds()[1]) ||
                                      ha.isCrashed(cs->hostIds()[2]) ||
                                      ha.isCrashed(cs->hostIds()[3])
                                  ? 1u
                                  : 0u));
    inj.stop();
}

TEST_F(HaTest, InjectorDisabledWithZeroMtbf)
{
    HaManager ha(srv());
    FailureConfig fcfg;
    fcfg.mtbf = 0;
    FailureInjector inj(ha, fcfg, Rng(5));
    inj.start();
    sim().runUntil(hours(10));
    EXPECT_EQ(inj.outages(), 0u);
}

} // namespace
} // namespace vcp
