/**
 * @file
 * Tests for the base-disk pool manager: replica lookup, lazy
 * replication (ensureReplica), request coalescing, and the
 * aggressive maintenance scan.
 */

#include "cloud_fixture.hh"

namespace vcp {
namespace {

class PoolTest : public CloudFixture
{
  protected:
    BaseDiskPoolManager &pool() { return cloud().pool(); }
    DiskId
    seedDisk()
    {
        return pool().replicas(tmpl())[0].disk;
    }
};

TEST_F(PoolTest, SeedReplicaRegistered)
{
    ASSERT_EQ(pool().replicas(tmpl()).size(), 1u);
    EXPECT_EQ(pool().replicas(tmpl())[0].disk, seedDisk());
    EXPECT_DOUBLE_EQ(pool().poolUtilization(tmpl()), 0.0);
}

TEST_F(PoolTest, FindReplicaReturnsSeed)
{
    auto r = pool().findReplica(tmpl(), cs->hostIds()[0], mib(100));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->disk, seedDisk());
}

TEST_F(PoolTest, FindReplicaRespectsFanoutCap)
{
    inv().disk(seedDisk()).ref_count =
        pool().config().max_clones_per_base;
    auto r = pool().findReplica(tmpl(), cs->hostIds()[0], mib(100));
    EXPECT_FALSE(r.has_value());
}

TEST_F(PoolTest, FindReplicaRespectsSpace)
{
    DatastoreId ds = pool().replicas(tmpl())[0].datastore;
    inv().datastore(ds).reserve(inv().datastore(ds).free());
    auto r = pool().findReplica(tmpl(), cs->hostIds()[0], mib(100));
    EXPECT_FALSE(r.has_value());
}

TEST_F(PoolTest, EnsureReplicaReturnsExistingImmediately)
{
    bool called = false;
    pool().ensureReplica(tmpl(), cs->hostIds()[0], mib(100),
                         [&](std::optional<BaseReplica> r) {
                             called = true;
                             EXPECT_TRUE(r.has_value());
                         });
    EXPECT_TRUE(called);
    EXPECT_EQ(pool().replicationsIssued(), 0u);
}

TEST_F(PoolTest, EnsureReplicaReplicatesWhenSaturated)
{
    inv().disk(seedDisk()).ref_count =
        pool().config().max_clones_per_base;
    std::optional<BaseReplica> got;
    pool().ensureReplica(tmpl(), cs->hostIds()[0], mib(100),
                         [&](std::optional<BaseReplica> r) {
                             got = r;
                         });
    EXPECT_EQ(pool().replicationsIssued(), 1u);
    drain();
    ASSERT_TRUE(got.has_value());
    EXPECT_NE(got->disk, seedDisk());
    EXPECT_EQ(pool().replicas(tmpl()).size(), 2u);
    EXPECT_EQ(pool().replicationsSucceeded(), 1u);
    // The new replica landed on the other datastore.
    EXPECT_NE(got->datastore,
              pool().replicas(tmpl())[0].datastore);
}

TEST_F(PoolTest, ConcurrentEnsuresCoalesceIntoOneReplication)
{
    inv().disk(seedDisk()).ref_count =
        pool().config().max_clones_per_base;
    int called = 0;
    for (int i = 0; i < 5; ++i) {
        pool().ensureReplica(tmpl(), cs->hostIds()[0], mib(100),
                             [&](std::optional<BaseReplica> r) {
                                 EXPECT_TRUE(r.has_value());
                                 ++called;
                             });
    }
    drain();
    EXPECT_EQ(called, 5);
    EXPECT_EQ(pool().replicationsIssued(), 1u);
}

TEST_F(PoolTest, EnsureFailsWhenNoTargetDatastore)
{
    inv().disk(seedDisk()).ref_count =
        pool().config().max_clones_per_base;
    // Fill the other datastore so no target qualifies.
    for (DatastoreId ds : cs->datastoreIds())
        inv().datastore(ds).reserve(inv().datastore(ds).free());
    bool called = false;
    pool().ensureReplica(tmpl(), cs->hostIds()[0], mib(100),
                         [&](std::optional<BaseReplica> r) {
                             called = true;
                             EXPECT_FALSE(r.has_value());
                         });
    drain();
    EXPECT_TRUE(called);
}

TEST_F(PoolTest, MaintenanceTopsUpReplicationFactor)
{
    // Config asks for RF 1 (default); raise expectations by
    // rebuilding with RF 2 aggressive.
    CloudSetupSpec spec = makeSpec();
    spec.director.pool.replication_factor = 2;
    spec.director.pool.aggressive = true;
    build(spec);
    EXPECT_EQ(cloud().pool().replicas(tmpl()).size(), 1u);
    cloud().pool().runMaintenanceOnce();
    drain();
    EXPECT_EQ(cloud().pool().replicas(tmpl()).size(), 2u);
}

TEST_F(PoolTest, MaintenancePreReplicatesOnUtilization)
{
    CloudSetupSpec spec = makeSpec();
    spec.director.pool.preplicate_threshold = 0.5;
    build(spec);
    BaseDiskPoolManager &p = cloud().pool();
    DiskId seed = p.replicas(tmpl())[0].disk;
    inv().disk(seed).ref_count =
        static_cast<int>(p.config().max_clones_per_base * 0.75);
    EXPECT_GT(p.poolUtilization(tmpl()), 0.5);
    p.runMaintenanceOnce();
    drain();
    EXPECT_EQ(p.replicas(tmpl()).size(), 2u);
}

TEST_F(PoolTest, MaintenanceIdleWhenHealthy)
{
    pool().runMaintenanceOnce();
    drain();
    EXPECT_EQ(pool().replicationsIssued(), 0u);
    EXPECT_EQ(pool().replicas(tmpl()).size(), 1u);
}

TEST_F(PoolTest, StartMaintenanceScansPeriodically)
{
    CloudSetupSpec spec = makeSpec();
    spec.director.pool.replication_factor = 2;
    spec.director.pool.aggressive = true; // starts maintenance
    spec.director.pool.check_period = minutes(5);
    build(spec);
    sim().runUntil(minutes(6));
    EXPECT_EQ(cloud().pool().replicas(tmpl()).size(), 2u);
}

TEST_F(PoolTest, UtilizationCountsRefsAcrossReplicas)
{
    inv().disk(seedDisk()).ref_count = 4;
    double u = pool().poolUtilization(tmpl());
    EXPECT_NEAR(u, 4.0 / pool().config().max_clones_per_base, 1e-9);
}

} // namespace
} // namespace vcp
