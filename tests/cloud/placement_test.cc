/**
 * @file
 * Tests for the placement engine: host load balancing, datastore
 * policies, pool-aware linked-clone placement.
 */

#include "cloud_fixture.hh"

#include <map>
#include <set>

#include "sim/logging.hh"

namespace vcp {
namespace {

class PlacementTest : public CloudFixture
{
  protected:
    PlacementQuery
    query(Bytes disk_need = gib(1), bool linked = false)
    {
        PlacementQuery q;
        q.vcpus = 1;
        q.memory = gib(2);
        q.disk_need = disk_need;
        q.tmpl = tmpl();
        q.linked = linked;
        return q;
    }
};

TEST_F(PlacementTest, PicksLeastLoadedHost)
{
    // Load host 0 heavily.
    HostId h0 = cs->hostIds()[0];
    inv().host(h0).commit(30, gib(30));
    Placement p = cloud().placement().place(query());
    ASSERT_TRUE(p.ok);
    EXPECT_NE(p.host, h0);
}

TEST_F(PlacementTest, FailsWhenNoHostAdmits)
{
    for (HostId h : cs->hostIds())
        inv().host(h).setMaintenance(true);
    Placement p = cloud().placement().place(query());
    EXPECT_FALSE(p.ok);
}

TEST_F(PlacementTest, FailsWhenNoDatastoreFits)
{
    Placement p = cloud().placement().place(query(gib(100000)));
    EXPECT_FALSE(p.ok);
}

TEST_F(PlacementTest, MostFreePolicyPicksEmptierDatastore)
{
    cloud().placement().setPolicy(DsPolicy::MostFree);
    DatastoreId ds0 = cs->datastoreIds()[0];
    DatastoreId ds1 = cs->datastoreIds()[1];
    inv().datastore(ds0).reserve(gib(100));
    Placement p = cloud().placement().place(query());
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.datastore, ds1);
}

TEST_F(PlacementTest, PackPolicyPicksFullerDatastore)
{
    cloud().placement().setPolicy(DsPolicy::Pack);
    DatastoreId ds0 = cs->datastoreIds()[0];
    inv().datastore(ds0).reserve(gib(100));
    Placement p = cloud().placement().place(query());
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.datastore, ds0);
}

TEST_F(PlacementTest, PackPolicySkipsDatastoreThatCannotFit)
{
    cloud().placement().setPolicy(DsPolicy::Pack);
    DatastoreId ds0 = cs->datastoreIds()[0];
    DatastoreId ds1 = cs->datastoreIds()[1];
    inv().datastore(ds0).reserve(inv().datastore(ds0).free() -
                                 gib(1));
    Placement p = cloud().placement().place(query(gib(2)));
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.datastore, ds1);
}

TEST_F(PlacementTest, RoundRobinRotates)
{
    cloud().placement().setPolicy(DsPolicy::RoundRobin);
    Placement p1 = cloud().placement().place(query());
    Placement p2 = cloud().placement().place(query());
    ASSERT_TRUE(p1.ok);
    ASSERT_TRUE(p2.ok);
    EXPECT_NE(p1.datastore, p2.datastore);
}

TEST_F(PlacementTest, LinkedPrefersDatastoreWithBase)
{
    // The template seed base lives on one datastore; a linked query
    // must find it.
    Placement p = cloud().placement().place(query(mib(100), true));
    ASSERT_TRUE(p.ok);
    ASSERT_TRUE(p.base_found);
    EXPECT_EQ(inv().disk(p.base.disk).datastore, p.datastore);
}

TEST_F(PlacementTest, LinkedFallsBackWhenBaseSaturated)
{
    // Saturate the seed base's clone slots.
    const auto &reps = cloud().pool().replicas(tmpl());
    ASSERT_EQ(reps.size(), 1u);
    inv().disk(reps[0].disk).ref_count =
        cloud().pool().config().max_clones_per_base;
    Placement p = cloud().placement().place(query(mib(100), true));
    ASSERT_TRUE(p.ok);
    EXPECT_FALSE(p.base_found);
}

TEST_F(PlacementTest, PendingLedgerSpreadsSimultaneousPlacements)
{
    // Without resolution between calls, repeated placements must not
    // pile onto one host: the pending footprint counts as load.
    PlacementEngine &pe = cloud().placement();
    std::map<HostId, int> per_host;
    for (int i = 0; i < 8; ++i) {
        Placement p = pe.place(query());
        ASSERT_TRUE(p.ok);
        per_host[p.host] += 1;
    }
    // 4 hosts, 8 placements: perfectly balanced is 2 each.
    for (const auto &kv : per_host)
        EXPECT_EQ(kv.second, 2) << "host " << kv.first.value;
    EXPECT_EQ(pe.pendingVcpus(cs->hostIds()[0]), 2);
}

TEST_F(PlacementTest, ResolveReleasesPendingFootprint)
{
    PlacementEngine &pe = cloud().placement();
    PlacementQuery q = query();
    Placement p = pe.place(q);
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(pe.pendingVcpus(p.host), q.vcpus);
    EXPECT_EQ(pe.pendingMemory(p.host), q.memory);
    pe.resolve(p.host, q.vcpus, q.memory);
    EXPECT_EQ(pe.pendingVcpus(p.host), 0);
    EXPECT_EQ(pe.pendingMemory(p.host), 0);
}

TEST_F(PlacementTest, ResolveWithoutPlacementPanics)
{
    EXPECT_THROW(cloud().placement().resolve(cs->hostIds()[0], 1,
                                             gib(1)),
                 PanicError);
}

TEST_F(PlacementTest, PendingLoadBlocksAdmission)
{
    // Fill a host's admission capacity purely with pending
    // placements; further queries must go elsewhere or fail.
    PlacementEngine &pe = cloud().placement();
    PlacementQuery big = query();
    big.vcpus = 64; // host capacity: 16 cores x 4.0 = 64 vCPUs
    std::set<HostId> used;
    for (int i = 0; i < 4; ++i) {
        Placement p = pe.place(big);
        ASSERT_TRUE(p.ok);
        EXPECT_TRUE(used.insert(p.host).second)
            << "host reused while pending-full";
    }
    Placement overflow = pe.place(big);
    EXPECT_FALSE(overflow.ok);
}

TEST_F(PlacementTest, DsPolicyNames)
{
    EXPECT_STREQ(dsPolicyName(DsPolicy::MostFree), "most-free");
    EXPECT_STREQ(dsPolicyName(DsPolicy::Pack), "pack");
    EXPECT_STREQ(dsPolicyName(DsPolicy::RoundRobin), "round-robin");
}

} // namespace
} // namespace vcp
