/**
 * @file
 * End-to-end integration tests: simulator-vs-analytic queueing
 * validation, the paper's linked-vs-full bottleneck shift, overload
 * behaviour, and conservation invariants under churn.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "analysis/bottleneck.hh"
#include "analysis/queueing.hh"
#include "cloud/ha_manager.hh"
#include "workload/failures.hh"
#include "workload/profiles.hh"

namespace vcp {
namespace {

/**
 * T3 basis: a ServiceCenter under Poisson arrivals and exponential
 * service must reproduce analytic M/M/c waiting times.
 */
class MmcValidationTest
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(MmcValidationTest, SimMatchesErlangC)
{
    auto [servers, rho] = GetParam();
    Simulator sim(1234);
    ServiceCenter sc(sim, "mmc", servers);
    Rng rng(99);

    double mu = 1.0;                 // per-second service rate
    double lambda = rho * servers * mu;
    const int n = 60000;

    // Open-loop Poisson arrivals with exponential service times.
    SimTime t = 0;
    for (int i = 0; i < n; ++i) {
        t += seconds(rng.exponential(1.0 / lambda));
        SimDuration service = seconds(rng.exponential(1.0 / mu));
        sim.scheduleAt(t, [&sc, service] {
            sc.submit(service, [] {});
        });
    }
    sim.run();

    MmcResult analytic = mmcAnalysis(lambda, mu, servers);
    double sim_wq = sc.waitTimes().mean() / 1e6; // usec -> s
    // 5% of the mean sojourn or absolute 0.01 s, whichever is larger.
    double tol = std::max(0.08 * analytic.w, 0.01);
    EXPECT_NEAR(sim_wq, analytic.wq, tol)
        << "c=" << servers << " rho=" << rho;
    EXPECT_NEAR(sc.utilization(), rho, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MmcValidationTest,
    ::testing::Values(std::make_tuple(1, 0.5),
                      std::make_tuple(1, 0.8),
                      std::make_tuple(4, 0.7),
                      std::make_tuple(8, 0.9)));

CloudSetupSpec
smallCloud(bool linked)
{
    CloudSetupSpec s;
    s.name = linked ? "small-linked" : "small-full";
    s.infra.hosts = 8;
    s.infra.host.cores = 16;
    s.infra.host.memory = gib(128);
    s.infra.datastores = 2;
    s.infra.ds_capacity = gib(2048);
    s.infra.ds_copy_bandwidth = 100.0 * 1024 * 1024;

    TenantConfig t;
    t.name = "org";
    t.vm_quota = 0;
    s.tenants.push_back(t);
    s.templates = {{"tmpl", gib(8), 0.5, 1, gib(1), 1, hours(24)}};
    s.director.use_linked_clones = linked;
    s.director.pool.max_clones_per_base = 1000;

    s.workload.duration = hours(2);
    s.workload.arrival.rate_per_hour = 120.0;
    // Deploy-only workload for a clean comparison.
    s.workload.action_weights = {1, 0, 0, 0, 0, 0, 0};
    return s;
}

TEST(IntegrationTest, LinkedClonesConserveBandwidth)
{
    CloudSimulation full(smallCloud(false), 5);
    CloudSimulation linked(smallCloud(true), 5);
    full.run();
    linked.run();

    ASSERT_GT(full.cloud().vmsProvisioned(), 50u);
    ASSERT_GT(linked.cloud().vmsProvisioned(), 50u);
    // The paper's premise: linked clones slash data movement.
    EXPECT_GT(full.server().bytesMoved(),
              50 * linked.server().bytesMoved() + 1);
    // And cut provisioning latency by a large factor.
    double full_lat =
        full.server().latencyHistogram(OpType::CloneFull).mean();
    double linked_lat =
        linked.server().latencyHistogram(OpType::CloneLinked).mean();
    EXPECT_GT(full_lat, 4.0 * linked_lat);
}

TEST(IntegrationTest, FullClonesAreDataPlaneLimitedUnderStorm)
{
    // Overdrive a full-clone cloud: the datastore pipes should be
    // the busiest resource.
    CloudSetupSpec spec = smallCloud(false);
    spec.workload.arrival.rate_per_hour = 600.0;
    spec.workload.duration = hours(1);
    CloudSimulation cs(spec, 5);
    cs.run();
    auto utils = collectUtilizations(cs.server());
    double pipe_max = 0.0;
    for (const auto &u : utils) {
        if (u.name == "datastore-pipes(max)")
            pipe_max = u.utilization;
    }
    EXPECT_GT(pipe_max, 0.8);
}

TEST(IntegrationTest, LinkedClonesAreControlPlaneLimitedUnderStorm)
{
    // Same storm with linked clones: data plane nearly idle, and
    // the binding resource is a control-plane one.
    CloudSetupSpec spec = smallCloud(true);
    spec.workload.arrival.rate_per_hour = 2000.0;
    spec.workload.duration = hours(1);
    spec.server.dispatch_width = 16;
    CloudSimulation cs(spec, 5);
    cs.run();
    auto utils = collectUtilizations(cs.server());
    EXPECT_TRUE(controlPlaneLimited(utils))
        << utilizationTable(utils).toText();
    for (const auto &u : utils) {
        if (u.name == "datastore-pipes(max)")
            EXPECT_LT(u.utilization, 0.1);
    }
}

TEST(IntegrationTest, OverloadQueuesGrowButWorkCompletes)
{
    CloudSetupSpec spec = smallCloud(true);
    spec.workload.arrival.rate_per_hour = 3000.0;
    spec.workload.duration = minutes(30);
    spec.server.dispatch_width = 4;
    CloudSimulation cs(spec, 5);
    cs.run(/*drain=*/hours(4));
    // Everything eventually completed (accepted ops conserve).
    EXPECT_EQ(cs.server().opsSubmitted(),
              cs.server().opsCompleted() + cs.server().opsFailed());
    // Queueing dominated latency for late ops.
    double mean_queue_us =
        cs.stats()
            .summary("cp.phase_us.clone-linked.queue")
            .mean();
    EXPECT_GT(mean_queue_us, static_cast<double>(seconds(10)));
}

TEST(IntegrationTest, ChurnConservesInventoryAndSpace)
{
    CloudSetupSpec spec = smallCloud(true);
    spec.templates[0].lease = hours(1); // fast churn
    spec.workload.duration = hours(6);
    spec.workload.arrival.rate_per_hour = 60.0;
    spec.workload.action_weights = {10, 5, 5, 2, 2, 1, 1};
    CloudSimulation cs(spec, 17);
    cs.run(/*drain=*/hours(2));

    CloudDirector &cloud = cs.cloud();
    // VM conservation: alive = provisioned - destroyed + the golden
    // master.
    EXPECT_EQ(cs.inventory().numVms(),
              1 + cloud.vmsProvisioned() - cloud.vmsDestroyed());
    // Lease expirations actually drove churn.
    EXPECT_GT(cloud.leases().expirations(), 10u);
    EXPECT_GT(cloud.vmsDestroyed(), 10u);
    // Space accounting stays sane.
    for (DatastoreId ds : cs.datastoreIds()) {
        EXPECT_GE(cs.inventory().datastore(ds).free(), 0);
        EXPECT_GE(cs.inventory().datastore(ds).used(), 0);
    }
    // Tenant usage equals actual live tenant VMs.
    int live_tenant_vms = 0;
    for (VmId vm : cs.inventory().vmIds()) {
        if (!cs.inventory().vm(vm).is_template)
            ++live_tenant_vms;
    }
    EXPECT_EQ(cloud.tenant(cs.tenantIds()[0]).vmsInUse(),
              live_tenant_vms);
}

TEST(IntegrationTest, ProfilesRunScaledDown)
{
    // Scaled-down versions of the two paper profiles run clean.
    for (CloudSetupSpec spec : {cloudASpec(), cloudBSpec()}) {
        spec.infra.hosts = 8;
        spec.infra.datastores = 4;
        spec.workload.duration = hours(1);
        spec.workload.arrival.rate_per_hour = 30.0;
        CloudSimulation cs(spec, 3);
        cs.run();
        EXPECT_GT(cs.server().opsCompleted(), 0u) << spec.name;
        // No task leaks: nothing pending after drain except
        // recurring maintenance/lease events.
        EXPECT_EQ(cs.server().opsSubmitted(),
                  cs.server().opsCompleted() +
                      cs.server().opsFailed())
            << spec.name;
    }
}

/**
 * Chaos: random host crashes and HA recoveries racing a live
 * self-service workload.  Afterward, the global accounting must be
 * exact — crash paths are where double-releases hide.
 */
class ChaosTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChaosTest, ConservationSurvivesCrashStorms)
{
    CloudSetupSpec spec = smallCloud(true);
    spec.templates[0].lease = hours(1);
    spec.workload.duration = hours(8);
    spec.workload.arrival.rate_per_hour = 90.0;
    spec.workload.action_weights = {10, 4, 8, 3, 2, 1, 2};
    CloudSimulation cs(spec, GetParam());

    HaManager ha(cs.server());
    FailureConfig fcfg;
    fcfg.mtbf = minutes(45); // aggressive: ~10 outages over the run
    fcfg.outage_mean = minutes(10);
    FailureInjector injector(ha, fcfg, Rng(GetParam() * 3 + 1));
    injector.start();

    cs.run(/*drain=*/hours(3));
    injector.stop();

    EXPECT_GT(injector.outages(), 3u);
    EXPECT_GT(ha.vmsRestarted(), 0u);
    // Accounting survives the chaos.
    EXPECT_EQ(cs.server().opsSubmitted(),
              cs.server().opsCompleted() + cs.server().opsFailed());

    Inventory &inv = cs.inventory();
    std::unordered_map<HostId, int> vcpus;
    std::unordered_map<HostId, Bytes> mem;
    for (VmId v : inv.vmIds()) {
        const Vm &vm = inv.vm(v);
        if (vm.powerState() == PowerState::PoweredOn ||
            vm.powerState() == PowerState::PoweringOn ||
            vm.powerState() == PowerState::PoweringOff) {
            ASSERT_TRUE(vm.host.valid());
            vcpus[vm.host] += vm.vcpus;
            mem[vm.host] += vm.memory;
        }
    }
    for (HostId h : cs.hostIds()) {
        EXPECT_EQ(inv.host(h).committedVcpus(), vcpus[h])
            << "host " << h.value;
        EXPECT_EQ(inv.host(h).committedMemory(), mem[h]);
    }
    std::unordered_map<DatastoreId, Bytes> alloc;
    for (DiskId d : inv.diskIds())
        alloc[inv.disk(d).datastore] += inv.disk(d).allocated;
    for (DatastoreId d : cs.datastoreIds())
        EXPECT_EQ(inv.datastore(d).used(), alloc[d]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(3u, 11u, 29u, 71u));

TEST(IntegrationTest, HostAgentSlotSweepRaisesThroughput)
{
    // More host-agent slots -> shorter makespan for a fixed batch of
    // linked clones (until another resource binds).
    auto makespan = [](int slots) {
        CloudSetupSpec spec = smallCloud(true);
        spec.server.agent.op_slots = slots;
        CloudSimulation cs(spec, 4);
        // Hand-issue 64 deploys at t=0.
        for (int i = 0; i < 64; ++i) {
            DeployRequest req;
            req.tenant = cs.tenantIds()[0];
            req.tmpl = cs.templateIds()[0];
            cs.cloud().deployVApp(req);
        }
        cs.sim().runUntil(hours(2));
        EXPECT_EQ(cs.cloud().deploysSucceeded(), 64u);
        double mean_us = cs.stats()
                             .histogram("cloud.deploy_latency_us")
                             .mean();
        return mean_us;
    };
    double slow = makespan(1);
    double fast = makespan(8);
    EXPECT_GT(slow, 1.5 * fast);
}

} // namespace
} // namespace vcp
