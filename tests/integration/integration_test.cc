/**
 * @file
 * End-to-end integration tests: simulator-vs-analytic queueing
 * validation, the paper's linked-vs-full bottleneck shift, overload
 * behaviour, and conservation invariants under churn.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "analysis/bottleneck.hh"
#include "analysis/queueing.hh"
#include "cloud/ha_manager.hh"
#include "workload/failures.hh"
#include "workload/profiles.hh"

namespace vcp {
namespace {

/**
 * T3 basis: a ServiceCenter under Poisson arrivals and exponential
 * service must reproduce analytic M/M/c waiting times.
 */
class MmcValidationTest
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(MmcValidationTest, SimMatchesErlangC)
{
    auto [servers, rho] = GetParam();
    Simulator sim(1234);
    ServiceCenter sc(sim, "mmc", servers);
    Rng rng(99);

    double mu = 1.0;                 // per-second service rate
    double lambda = rho * servers * mu;
    const int n = 60000;

    // Open-loop Poisson arrivals with exponential service times.
    SimTime t = 0;
    for (int i = 0; i < n; ++i) {
        t += seconds(rng.exponential(1.0 / lambda));
        SimDuration service = seconds(rng.exponential(1.0 / mu));
        sim.scheduleAt(t, [&sc, service] {
            sc.submit(service, [] {});
        });
    }
    sim.run();

    MmcResult analytic = mmcAnalysis(lambda, mu, servers);
    double sim_wq = sc.waitTimes().mean() / 1e6; // usec -> s
    // 5% of the mean sojourn or absolute 0.01 s, whichever is larger.
    double tol = std::max(0.08 * analytic.w, 0.01);
    EXPECT_NEAR(sim_wq, analytic.wq, tol)
        << "c=" << servers << " rho=" << rho;
    EXPECT_NEAR(sc.utilization(), rho, 0.03);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MmcValidationTest,
    ::testing::Values(std::make_tuple(1, 0.5),
                      std::make_tuple(1, 0.8),
                      std::make_tuple(4, 0.7),
                      std::make_tuple(8, 0.9)));

CloudSetupSpec
smallCloud(bool linked)
{
    CloudSetupSpec s;
    s.name = linked ? "small-linked" : "small-full";
    s.infra.hosts = 8;
    s.infra.host.cores = 16;
    s.infra.host.memory = gib(128);
    s.infra.datastores = 2;
    s.infra.ds_capacity = gib(2048);
    s.infra.ds_copy_bandwidth = 100.0 * 1024 * 1024;

    TenantConfig t;
    t.name = "org";
    t.vm_quota = 0;
    s.tenants.push_back(t);
    s.templates = {{"tmpl", gib(8), 0.5, 1, gib(1), 1, hours(24)}};
    s.director.use_linked_clones = linked;
    s.director.pool.max_clones_per_base = 1000;

    s.workload.duration = hours(2);
    s.workload.arrival.rate_per_hour = 120.0;
    // Deploy-only workload for a clean comparison.
    s.workload.action_weights = {1, 0, 0, 0, 0, 0, 0};
    return s;
}

TEST(IntegrationTest, LinkedClonesConserveBandwidth)
{
    CloudSimulation full(smallCloud(false), 5);
    CloudSimulation linked(smallCloud(true), 5);
    full.run();
    linked.run();

    ASSERT_GT(full.cloud().vmsProvisioned(), 50u);
    ASSERT_GT(linked.cloud().vmsProvisioned(), 50u);
    // The paper's premise: linked clones slash data movement.
    EXPECT_GT(full.server().bytesMoved(),
              50 * linked.server().bytesMoved() + 1);
    // And cut provisioning latency by a large factor.
    double full_lat =
        full.server().latencyHistogram(OpType::CloneFull).mean();
    double linked_lat =
        linked.server().latencyHistogram(OpType::CloneLinked).mean();
    EXPECT_GT(full_lat, 4.0 * linked_lat);
}

TEST(IntegrationTest, FullClonesAreDataPlaneLimitedUnderStorm)
{
    // Overdrive a full-clone cloud: the datastore pipes should be
    // the busiest resource.
    CloudSetupSpec spec = smallCloud(false);
    spec.workload.arrival.rate_per_hour = 600.0;
    spec.workload.duration = hours(1);
    CloudSimulation cs(spec, 5);
    cs.run();
    auto utils = collectUtilizations(cs.server());
    double pipe_max = 0.0;
    for (const auto &u : utils) {
        if (u.name == "datastore-pipes(max)")
            pipe_max = u.utilization;
    }
    EXPECT_GT(pipe_max, 0.8);
}

TEST(IntegrationTest, LinkedClonesAreControlPlaneLimitedUnderStorm)
{
    // Same storm with linked clones: data plane nearly idle, and
    // the binding resource is a control-plane one.
    CloudSetupSpec spec = smallCloud(true);
    spec.workload.arrival.rate_per_hour = 2000.0;
    spec.workload.duration = hours(1);
    spec.server.dispatch_width = 16;
    CloudSimulation cs(spec, 5);
    cs.run();
    auto utils = collectUtilizations(cs.server());
    EXPECT_TRUE(controlPlaneLimited(utils))
        << utilizationTable(utils).toText();
    for (const auto &u : utils) {
        if (u.name == "datastore-pipes(max)")
            EXPECT_LT(u.utilization, 0.1);
    }
}

TEST(IntegrationTest, OverloadQueuesGrowButWorkCompletes)
{
    CloudSetupSpec spec = smallCloud(true);
    spec.workload.arrival.rate_per_hour = 3000.0;
    spec.workload.duration = minutes(30);
    spec.server.dispatch_width = 4;
    CloudSimulation cs(spec, 5);
    cs.run(/*drain=*/hours(4));
    // Everything eventually completed (accepted ops conserve).
    EXPECT_EQ(cs.server().opsSubmitted(),
              cs.server().opsCompleted() + cs.server().opsFailed());
    // Queueing dominated latency for late ops.
    double mean_queue_us =
        cs.stats()
            .summary("cp.phase_us.clone-linked.queue")
            .mean();
    EXPECT_GT(mean_queue_us, static_cast<double>(seconds(10)));
}

TEST(IntegrationTest, ChurnConservesInventoryAndSpace)
{
    CloudSetupSpec spec = smallCloud(true);
    spec.templates[0].lease = hours(1); // fast churn
    spec.workload.duration = hours(6);
    spec.workload.arrival.rate_per_hour = 60.0;
    spec.workload.action_weights = {10, 5, 5, 2, 2, 1, 1};
    CloudSimulation cs(spec, 17);
    cs.run(/*drain=*/hours(2));

    CloudDirector &cloud = cs.cloud();
    // VM conservation: alive = provisioned - destroyed + the golden
    // master.
    EXPECT_EQ(cs.inventory().numVms(),
              1 + cloud.vmsProvisioned() - cloud.vmsDestroyed());
    // Lease expirations actually drove churn.
    EXPECT_GT(cloud.leases().expirations(), 10u);
    EXPECT_GT(cloud.vmsDestroyed(), 10u);
    // Space accounting stays sane.
    for (DatastoreId ds : cs.datastoreIds()) {
        EXPECT_GE(cs.inventory().datastore(ds).free(), 0);
        EXPECT_GE(cs.inventory().datastore(ds).used(), 0);
    }
    // Tenant usage equals actual live tenant VMs.
    int live_tenant_vms = 0;
    for (VmId vm : cs.inventory().vmIds()) {
        if (!cs.inventory().vm(vm).is_template)
            ++live_tenant_vms;
    }
    EXPECT_EQ(cloud.tenant(cs.tenantIds()[0]).vmsInUse(),
              live_tenant_vms);
}

TEST(IntegrationTest, ProfilesRunScaledDown)
{
    // Scaled-down versions of the two paper profiles run clean.
    for (CloudSetupSpec spec : {cloudASpec(), cloudBSpec()}) {
        spec.infra.hosts = 8;
        spec.infra.datastores = 4;
        spec.workload.duration = hours(1);
        spec.workload.arrival.rate_per_hour = 30.0;
        CloudSimulation cs(spec, 3);
        cs.run();
        EXPECT_GT(cs.server().opsCompleted(), 0u) << spec.name;
        // No task leaks: nothing pending after drain except
        // recurring maintenance/lease events.
        EXPECT_EQ(cs.server().opsSubmitted(),
                  cs.server().opsCompleted() +
                      cs.server().opsFailed())
            << spec.name;
    }
}

/**
 * Chaos: random host crashes and HA recoveries racing a live
 * self-service workload.  Afterward, the global accounting must be
 * exact — crash paths are where double-releases hide.
 */
class ChaosTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ChaosTest, ConservationSurvivesCrashStorms)
{
    CloudSetupSpec spec = smallCloud(true);
    spec.templates[0].lease = hours(1);
    spec.workload.duration = hours(8);
    spec.workload.arrival.rate_per_hour = 90.0;
    spec.workload.action_weights = {10, 4, 8, 3, 2, 1, 2};
    CloudSimulation cs(spec, GetParam());

    HaManager ha(cs.server());
    FailureConfig fcfg;
    fcfg.mtbf = minutes(45); // aggressive: ~10 outages over the run
    fcfg.outage_mean = minutes(10);
    FailureInjector injector(ha, fcfg, Rng(GetParam() * 3 + 1));
    injector.start();

    cs.run(/*drain=*/hours(3));
    injector.stop();

    EXPECT_GT(injector.outages(), 3u);
    EXPECT_GT(ha.vmsRestarted(), 0u);
    // Accounting survives the chaos.
    EXPECT_EQ(cs.server().opsSubmitted(),
              cs.server().opsCompleted() + cs.server().opsFailed());

    Inventory &inv = cs.inventory();
    std::unordered_map<HostId, int> vcpus;
    std::unordered_map<HostId, Bytes> mem;
    for (VmId v : inv.vmIds()) {
        const Vm &vm = inv.vm(v);
        if (vm.powerState() == PowerState::PoweredOn ||
            vm.powerState() == PowerState::PoweringOn ||
            vm.powerState() == PowerState::PoweringOff) {
            ASSERT_TRUE(vm.host.valid());
            vcpus[vm.host] += vm.vcpus;
            mem[vm.host] += vm.memory;
        }
    }
    for (HostId h : cs.hostIds()) {
        EXPECT_EQ(inv.host(h).committedVcpus(), vcpus[h])
            << "host " << h.value;
        EXPECT_EQ(inv.host(h).committedMemory(), mem[h]);
    }
    std::unordered_map<DatastoreId, Bytes> alloc;
    for (DiskId d : inv.diskIds())
        alloc[inv.disk(d).datastore] += inv.disk(d).allocated;
    for (DatastoreId d : cs.datastoreIds())
        EXPECT_EQ(inv.datastore(d).used(), alloc[d]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(3u, 11u, 29u, 71u));

TEST(IntegrationTest, HostAgentSlotSweepRaisesThroughput)
{
    // More host-agent slots -> shorter makespan for a fixed batch of
    // linked clones (until another resource binds).
    auto makespan = [](int slots) {
        CloudSetupSpec spec = smallCloud(true);
        spec.server.agent.op_slots = slots;
        CloudSimulation cs(spec, 4);
        // Hand-issue 64 deploys at t=0.
        for (int i = 0; i < 64; ++i) {
            DeployRequest req;
            req.tenant = cs.tenantIds()[0];
            req.tmpl = cs.templateIds()[0];
            cs.cloud().deployVApp(req);
        }
        cs.sim().runUntil(hours(2));
        EXPECT_EQ(cs.cloud().deploysSucceeded(), 64u);
        double mean_us = cs.stats()
                             .histogram("cloud.deploy_latency_us")
                             .mean();
        return mean_us;
    };
    double slow = makespan(1);
    double fast = makespan(8);
    EXPECT_GT(slow, 1.5 * fast);
}

/**
 * Leaf-spine fabric end to end through the management pipeline: a
 * cross-rack clone storm saturates the oversubscribed spine uplink
 * while rack-local clones — sharing no link with the storm — keep
 * their uncongested latency, and a mid-copy uplink failure with no
 * alternate path fails the op with network-unreachable.
 */
class FabricIntegrationTest : public ::testing::Test
{
  protected:
    void
    build(int spines)
    {
        sim = std::make_unique<Simulator>(99);
        stats = std::make_unique<StatRegistry>();
        inv = std::make_unique<Inventory>(*sim);
        NetworkConfig nc;
        nc.fabric.preset = FabricPreset::LeafSpine;
        nc.fabric.racks = 2;
        nc.fabric.spines = spines;
        nc.fabric.edge_bandwidth = 200.0 * 1024 * 1024;
        nc.fabric.uplink_bandwidth = 25.0 * 1024 * 1024;
        net = std::make_unique<Network>(*sim, nc);
        ManagementServerConfig sc;
        sc.agent.op_slots = 16;
        srv = std::make_unique<ManagementServer>(*sim, *inv, *net,
                                                 *stats, sc);
        Fabric &fab = net->topology();

        DatastoreConfig dc;
        dc.capacity = gib(512);
        dc.copy_bandwidth = 400.0 * 1024 * 1024;
        auto addDs = [&](const char *name, int rack) {
            dc.name = name;
            DatastoreId d = inv->addDatastore(dc);
            fab.attachDatastore(d, rack);
            return d;
        };
        storm_src = addDs("storm-src", 0);
        storm_dst = addDs("storm-dst", 1);
        local_src = addDs("local-src", 0);
        local_dst = addDs("local-dst", 0);

        HostConfig hc;
        hc.cores = 64;
        hc.memory = gib(512);
        hc.name = "h0";
        h0 = inv->addHost(hc);
        hc.name = "h1";
        h1 = inv->addHost(hc);
        fab.attachHost(h0, 0);
        fab.attachHost(h1, 1);
        for (HostId h : {h0, h1})
            for (DatastoreId d :
                 {storm_src, storm_dst, local_src, local_dst})
                inv->connectHostToDatastore(h, d);

        storm_tmpl = makeTemplate("storm-tmpl", storm_src);
        local_tmpl = makeTemplate("local-tmpl", local_src);
    }

    VmId
    makeTemplate(const char *name, DatastoreId ds)
    {
        VmConfig vc;
        vc.name = name;
        vc.vcpus = 1;
        vc.memory = gib(1);
        vc.is_template = true;
        VmId t = inv->createVm(vc);
        DiskConfig bdc;
        bdc.kind = DiskKind::Flat;
        bdc.datastore = ds;
        bdc.capacity = gib(1);
        bdc.initial_allocation = gib(1);
        bdc.owner = t;
        inv->vm(t).disks.push_back(inv->createDisk(bdc));
        return t;
    }

    void
    submitClone(VmId tmpl, HostId host, DatastoreId dst,
                std::vector<Task> &out)
    {
        OpRequest req;
        req.type = OpType::CloneFull;
        req.vm = tmpl;
        req.host = host;
        req.datastore = dst;
        srv->submit(req,
                    [&out](const Task &t) { out.push_back(t); });
    }

    static double
    meanCopyTime(const std::vector<Task> &ts)
    {
        double sum = 0.0;
        for (const Task &t : ts)
            sum += static_cast<double>(
                t.phaseTime(TaskPhase::DataCopy));
        return sum / static_cast<double>(ts.size());
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<StatRegistry> stats;
    std::unique_ptr<Inventory> inv;
    std::unique_ptr<Network> net;
    std::unique_ptr<ManagementServer> srv;
    HostId h0, h1;
    DatastoreId storm_src, storm_dst, local_src, local_dst;
    VmId storm_tmpl, local_tmpl;
};

TEST_F(FabricIntegrationTest, SpineCongestionDoesNotTouchRackLocal)
{
    build(/*spines=*/1);
    std::vector<Task> storm, local;
    // Tenant A: six cross-rack clones all crossing the one 25 MiB/s
    // uplink.  Tenant B: two rack-local clones confined to rack 0.
    for (int i = 0; i < 6; ++i)
        submitClone(storm_tmpl, h1, storm_dst, storm);
    for (int i = 0; i < 2; ++i)
        submitClone(local_tmpl, h0, local_dst, local);
    sim->run();

    ASSERT_EQ(storm.size(), 6u);
    ASSERT_EQ(local.size(), 2u);
    for (const Task &t : storm)
        EXPECT_TRUE(t.succeeded());
    for (const Task &t : local)
        EXPECT_TRUE(t.succeeded());

    // The shared uplink is the storm's bottleneck: 6 GiB over
    // 25 MiB/s is ~4 min of serialized spine time, while each local
    // copy moves 1 GiB over its own 200 MiB/s edge links (~10 s,
    // PS-shared with its twin => ~2x).  Localization means an order
    // of magnitude between the two tenants.
    EXPECT_GT(meanCopyTime(storm), 5.0 * meanCopyTime(local));

    // And the topology agrees: the uplink is the busiest link.
    Fabric &fab = net->topology();
    FabricLinkId up = fab.findLink("up:tor0-spine0");
    ASSERT_NE(up, kInvalidFabricLink);
    EXPECT_EQ(fab.maxLinkBusyTime(), fab.link(up).busyTime());
    // Rack-local copies never touched the spine.
    Bytes spine_bytes = fab.link(up).bytesCompleted();
    EXPECT_EQ(spine_bytes, 6 * gib(1));
}

TEST_F(FabricIntegrationTest, UplinkFailureReroutesOverSecondSpine)
{
    build(/*spines=*/2);
    std::vector<Task> done;
    submitClone(storm_tmpl, h1, storm_dst, done);
    // Mid-copy (the 1 GiB copy holds the uplink for ~41 s), kill the
    // uplink the copy is riding; the second spine offers an
    // alternate path, so the op must still succeed.
    sim->schedule(seconds(20), [this] {
        Fabric &fab = net->topology();
        ASSERT_EQ(fab.activeTransfers(), 1u);
        FabricLinkId up0 = fab.findLink("up:tor0-spine0");
        FabricLinkId up1 = fab.findLink("up:tor0-spine1");
        // Whichever uplink carries the copy dies.
        FabricLinkId busy =
            fab.link(up0).activeTransfers() > 0 ? up0 : up1;
        fab.setLinkUp(busy, false);
    });
    sim->run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done[0].succeeded());
    EXPECT_EQ(net->topology().reroutes(), 1u);
}

TEST_F(FabricIntegrationTest, UnreachableMidCopyFailsWithNetworkError)
{
    build(/*spines=*/1);
    std::vector<Task> done;
    submitClone(storm_tmpl, h1, storm_dst, done);
    sim->schedule(seconds(5), [this] {
        Fabric &fab = net->topology();
        fab.setLinkUp(fab.findLink("up:tor0-spine0"), false);
    });
    sim->run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_FALSE(done[0].succeeded());
    EXPECT_EQ(done[0].error(), TaskError::NetworkUnreachable);
    EXPECT_EQ(net->topology().failedTransfers(), 1u);
    // The failed op released its slots: a rack-local clone still
    // completes afterwards.
    std::vector<Task> local;
    submitClone(local_tmpl, h0, local_dst, local);
    sim->run();
    ASSERT_EQ(local.size(), 1u);
    EXPECT_TRUE(local[0].succeeded());
}

} // namespace
} // namespace vcp
