/**
 * @file
 * Randomized operation-storm fuzzing of the management server.
 *
 * Issues a large stream of randomly parameterized operations — a
 * deliberate mix of valid and invalid — lets everything drain, and
 * then checks global invariants:
 *
 *   - op accounting: submitted == completed + failed
 *   - no lock, dispatch slot, agent slot, or DB connection leaked
 *   - datastore space equals the sum of resident disk allocations
 *   - host commitments equal the sum of powered-on VM footprints
 *   - disk reference counts equal the number of child disks
 *
 * Any resource leak on any failure path shows up here.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cloud/ha_manager.hh"
#include "controlplane/management_server.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

class OpFuzzer
{
  public:
    OpFuzzer(std::uint64_t seed)
        : sim(seed), inv(sim), net(sim, {}),
          srv(sim, inv, net, stats, makeCfg()), ha(srv),
          rng(seed * 31 + 7)
    {
        // Plant: 3 hosts, 2 datastores, one template with a base.
        for (int d = 0; d < 2; ++d) {
            DatastoreConfig dc;
            dc.name = "ds" + std::to_string(d);
            dc.capacity = gib(256);
            ds.push_back(inv.addDatastore(dc));
        }
        for (int h = 0; h < 3; ++h) {
            HostConfig hc;
            hc.name = "h" + std::to_string(h);
            hc.cores = 8;
            hc.memory = gib(32);
            HostId id = inv.addHost(hc);
            for (DatastoreId d : ds)
                inv.connectHostToDatastore(id, d);
            hosts.push_back(id);
        }
        VmConfig vc;
        vc.name = "tmpl";
        vc.vcpus = 1;
        vc.memory = gib(1);
        vc.is_template = true;
        tmpl = inv.createVm(vc);
        DiskConfig bdc;
        bdc.kind = DiskKind::Flat;
        bdc.datastore = ds[0];
        bdc.capacity = gib(4);
        bdc.initial_allocation = gib(2);
        bdc.owner = tmpl;
        base = inv.createDisk(bdc);
        inv.vm(tmpl).disks.push_back(base);
        vms.push_back(tmpl); // invalid target for many ops: good
    }

    static ManagementServerConfig
    makeCfg()
    {
        ManagementServerConfig cfg;
        cfg.dispatch_width = 8;
        cfg.retain_finished_tasks = false;
        return cfg;
    }

    /** Issue @p n random ops at random times over @p window. */
    void
    storm(int n, SimDuration window)
    {
        for (int i = 0; i < n; ++i) {
            SimDuration at = rng.uniformInt(0, window);
            sim.schedule(at, [this] { fireRandomOp(); });
        }
        sim.run();
    }

    void
    checkInvariants()
    {
        // Accounting.
        EXPECT_EQ(srv.opsSubmitted(),
                  srv.opsCompleted() + srv.opsFailed());
        EXPECT_GT(srv.opsCompleted(), 0u);
        EXPECT_GT(srv.opsFailed(), 0u); // fuzz must hit error paths

        // No execution resource leaked.
        EXPECT_EQ(srv.scheduler().inFlight(), 0);
        EXPECT_EQ(srv.scheduler().queueLength(), 0u);
        EXPECT_EQ(srv.apiCenter().busyServers(), 0);
        EXPECT_EQ(srv.database().center().busyServers(), 0);
        for (HostId h : hosts) {
            EXPECT_EQ(srv.hostAgent(h).center().busyServers(), 0);
            EXPECT_EQ(srv.hostAgent(h).center().queueLength(), 0u);
        }
        for (DatastoreId d : ds) {
            EXPECT_EQ(srv.datastoreSlots(d).busyServers(), 0);
        }

        // No lock held on any entity.
        for (VmId v : inv.vmIds())
            EXPECT_EQ(srv.lockManager().holders(lockKey(v)), 0);
        for (HostId h : hosts)
            EXPECT_EQ(srv.lockManager().holders(lockKey(h)), 0);
        for (DatastoreId d : ds)
            EXPECT_EQ(srv.lockManager().holders(lockKey(d)), 0);
        for (DiskId d : inv.diskIds())
            EXPECT_EQ(srv.lockManager().holders(lockKey(d)), 0);

        // Datastore space conservation.
        std::unordered_map<DatastoreId, Bytes> alloc;
        for (DiskId did : inv.diskIds()) {
            const VirtualDisk &disk = inv.disk(did);
            alloc[disk.datastore] += disk.allocated;
        }
        for (DatastoreId d : ds)
            EXPECT_EQ(inv.datastore(d).used(), alloc[d])
                << "datastore " << d.value;

        // Host commitment conservation.
        std::unordered_map<HostId, int> vcpus;
        std::unordered_map<HostId, Bytes> mem;
        for (VmId v : inv.vmIds()) {
            const Vm &vm = inv.vm(v);
            if (vm.powerState() == PowerState::PoweredOn) {
                ASSERT_TRUE(vm.host.valid());
                vcpus[vm.host] += vm.vcpus;
                mem[vm.host] += vm.memory;
            }
        }
        for (HostId h : hosts) {
            EXPECT_EQ(inv.host(h).committedVcpus(), vcpus[h])
                << "host " << h.value;
            EXPECT_EQ(inv.host(h).committedMemory(), mem[h]);
        }

        // Disk reference counts match actual children.
        std::unordered_map<DiskId, int> children;
        for (DiskId did : inv.diskIds()) {
            const VirtualDisk &disk = inv.disk(did);
            if (disk.parent.valid())
                children[disk.parent] += 1;
        }
        for (DiskId did : inv.diskIds())
            EXPECT_EQ(inv.disk(did).ref_count, children[did])
                << "disk " << did.value;

        // Disconnect/reconnect symmetry: every disconnect schedules
        // its reconcile, and the drain runs them all, so no agent may
        // end the storm dark or holding parked completions.
        for (HostId h : hosts) {
            EXPECT_TRUE(srv.hostAgent(h).connected())
                << "host " << h.value;
            EXPECT_EQ(srv.hostAgent(h).parkedOps(), 0u)
                << "host " << h.value;
        }

        // Registration symmetry.
        for (VmId v : inv.vmIds()) {
            const Vm &vm = inv.vm(v);
            if (vm.host.valid())
                EXPECT_TRUE(inv.host(vm.host).hasVm(v));
        }
        for (HostId h : hosts) {
            for (VmId v : inv.host(h).vms()) {
                ASSERT_TRUE(inv.hasVm(v));
                EXPECT_EQ(inv.vm(v).host, h);
            }
        }
    }

  private:
    VmId
    randomVm()
    {
        // Mix live ids with stale/bogus ones.
        if (rng.bernoulli(0.05))
            return VmId(rng.uniformInt(0, 500));
        return vms[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(vms.size()) - 1))];
    }

    void
    fireRandomOp()
    {
        // Occasionally crash a host (and schedule its recovery) —
        // abrupt state collapse racing every op in flight.
        if (rng.bernoulli(0.01)) {
            HostId victim = hosts[static_cast<std::size_t>(
                rng.uniformInt(0, 2))];
            if (!ha.isCrashed(victim) &&
                inv.host(victim).connected()) {
                ha.crashHost(victim);
                SimDuration outage = rng.uniformInt(seconds(10),
                                                    minutes(10));
                sim.schedule(outage, [this, victim] {
                    ha.recoverHost(victim);
                });
            }
            return;
        }

        // Occasionally drop a host agent's session (the host keeps
        // running) and schedule the reconnect+reconciliation — parks
        // whatever completions land during the dark window.
        if (rng.bernoulli(0.01)) {
            HostId victim = hosts[static_cast<std::size_t>(
                rng.uniformInt(0, 2))];
            if (inv.host(victim).connected() &&
                !ha.isCrashed(victim)) {
                srv.disconnectHost(victim);
                SimDuration dark = rng.uniformInt(seconds(5),
                                                  minutes(5));
                sim.schedule(dark, [this, victim] {
                    srv.reconcileHost(victim);
                });
            }
            return;
        }

        OpRequest req;
        int kind = static_cast<int>(rng.uniformInt(0, 11));
        switch (kind) {
          case 0:
          case 1: { // linked clone off the template base
            req.type = OpType::CloneLinked;
            req.vm = tmpl;
            req.host = hosts[static_cast<std::size_t>(
                rng.uniformInt(0, 2))];
            req.datastore = ds[0];
            req.base_disk = base;
            srv.submit(req, [this](const Task &t) {
                if (t.succeeded())
                    vms.push_back(t.resultVm());
            });
            return;
          }
          case 2: { // full clone
            req.type = OpType::CloneFull;
            req.vm = tmpl;
            req.host = hosts[static_cast<std::size_t>(
                rng.uniformInt(0, 2))];
            req.datastore = ds[static_cast<std::size_t>(
                rng.uniformInt(0, 1))];
            srv.submit(req, [this](const Task &t) {
                if (t.succeeded())
                    vms.push_back(t.resultVm());
            });
            return;
          }
          case 3:
          case 4:
            req.type = OpType::PowerOn;
            break;
          case 5:
            req.type = OpType::PowerOff;
            break;
          case 6:
            req.type = OpType::Destroy;
            break;
          case 7:
            req.type = OpType::Snapshot;
            break;
          case 8:
            req.type = OpType::RemoveSnapshot;
            break;
          case 9: {
            req.type = OpType::Reconfigure;
            req.vcpus = static_cast<int>(rng.uniformInt(1, 64));
            req.memory = gib(rng.uniformInt(1, 64));
            break;
          }
          case 10: {
            req.type = OpType::Migrate;
            req.host = hosts[static_cast<std::size_t>(
                rng.uniformInt(0, 2))];
            break;
          }
          case 11: {
            req.type = OpType::Relocate;
            req.datastore = ds[static_cast<std::size_t>(
                rng.uniformInt(0, 1))];
            break;
          }
        }
        req.vm = randomVm();
        srv.submit(req);
    }

    Simulator sim;
    StatRegistry stats;
    Inventory inv;
    Network net;
    ManagementServer srv;
    HaManager ha;
    Rng rng;

    std::vector<HostId> hosts;
    std::vector<DatastoreId> ds;
    std::vector<VmId> vms;
    VmId tmpl;
    DiskId base;
};

class FuzzTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzTest, InvariantsHoldAfterRandomStorm)
{
    OpFuzzer fuzzer(GetParam());
    // Spread phase: ops trickle in over two hours.
    fuzzer.storm(1500, hours(2));
    fuzzer.checkInvariants();
    // Burst phase: dense contention — many ops racing for the same
    // entities and lock queues (where destroy-vs-user races live).
    fuzzer.storm(600, minutes(2));
    fuzzer.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 23u, 99u,
                                           1234u, 31337u));

} // namespace
} // namespace vcp
