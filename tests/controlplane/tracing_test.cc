/**
 * @file
 * End-to-end tracing tests through the management server: every
 * pipeline phase of a real op shows up as span records and exact
 * histogram samples, phase spans reconcile with the task's own
 * phase accounting, and an absent/disabled tracer changes nothing.
 */

#include <gtest/gtest.h>

#include "controlplane/task.hh"
#include "trace/tracer.hh"

#include "cp_fixture.hh"

namespace vcp {
namespace {

class TracingTest : public ControlPlaneFixture
{
  protected:
    OpRequest
    cloneFullReq() const
    {
        OpRequest req;
        req.type = OpType::CloneFull;
        req.vm = tmpl;
        req.host = h0;
        req.datastore = ds0;
        req.name = "copy";
        return req;
    }
};

TEST_F(TracingTest, AttachRegistersFullAxes)
{
    SpanTracer tracer;
    srv->attachTracer(&tracer);
    EXPECT_EQ(srv->tracer(), &tracer);
    EXPECT_EQ(tracer.opNames().size(), kNumOpTypes);
    EXPECT_EQ(tracer.phaseNames().size(), kNumTaskPhases);
    EXPECT_EQ(tracer.errorNames().size(), kNumTaskErrors);
    EXPECT_EQ(tracer.opNames()[static_cast<std::size_t>(
                  OpType::CloneFull)],
              opTypeName(OpType::CloneFull));
    EXPECT_EQ(tracer.phaseNames()[static_cast<std::size_t>(
                  TaskPhase::DataCopy)],
              taskPhaseName(TaskPhase::DataCopy));
}

TEST_F(TracingTest, CloneFullRecordsAllSevenPhases)
{
    SpanTracer tracer;
    srv->attachTracer(&tracer);
    Task t = runOp(cloneFullReq());
    ASSERT_TRUE(t.succeeded());

    std::size_t op = static_cast<std::size_t>(OpType::CloneFull);
    for (std::size_t p = 0; p < kNumTaskPhases; ++p) {
        EXPECT_GE(tracer.phaseHistogram(op, p).count(), 1u)
            << "no span for phase "
            << taskPhaseName(static_cast<TaskPhase>(p));
    }
    EXPECT_EQ(tracer.opCount(op), 1u);
    EXPECT_NEAR(tracer.opHistogram(op).mean(),
                static_cast<double>(t.latency()), 1.0);
}

TEST_F(TracingTest, PhaseSpansReconcileWithTaskPhaseTimes)
{
    SpanTracer tracer;
    srv->attachTracer(&tracer);
    Task t = runOp(cloneFullReq());
    ASSERT_TRUE(t.succeeded());

    // Each phase's span total must equal the task's own accounting
    // (single op, so histogram total == that op's phase time).
    std::size_t op = static_cast<std::size_t>(OpType::CloneFull);
    for (std::size_t p = 0; p < kNumTaskPhases; ++p) {
        const LatencyHistogram &h = tracer.phaseHistogram(op, p);
        double spans_us = h.mean() * static_cast<double>(h.count());
        double task_us = static_cast<double>(
            t.phaseTime(static_cast<TaskPhase>(p)));
        EXPECT_NEAR(spans_us, task_us, 1.0)
            << "phase " << taskPhaseName(static_cast<TaskPhase>(p));
    }
}

TEST_F(TracingTest, RingHoldsOpAndPhaseRecordsForTask)
{
    SpanTracer tracer;
    srv->attachTracer(&tracer);
    Task t = runOp(cloneFullReq());
    ASSERT_TRUE(t.succeeded());

    std::size_t ops = 0, phases = 0, subs = 0;
    for (const SpanRecord &r : tracer.ring().snapshot()) {
        if (r.scope != t.id().value)
            continue;
        switch (r.kind) {
          case SpanKind::Op:
            ++ops;
            EXPECT_EQ(r.start, t.submittedAt());
            EXPECT_EQ(r.duration, t.latency());
            break;
          case SpanKind::Phase:
            ++phases;
            break;
          case SpanKind::Sub:
            ++subs;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(ops, 1u);
    EXPECT_GE(phases, kNumTaskPhases);
    // agent-exec sub-span under the host-agent phase (agent-wait
    // only appears when the agent slot was contended).
    EXPECT_GE(subs, 1u);
}

TEST_F(TracingTest, FailedOpRecordsErrorAxis)
{
    SpanTracer tracer;
    srv->attachTracer(&tracer);

    OpRequest req;
    req.type = OpType::PowerOn;
    req.vm = VmId{}; // no such entity
    Task t = runOp(req);
    EXPECT_EQ(t.error(), TaskError::NoSuchEntity);

    std::size_t op = static_cast<std::size_t>(OpType::PowerOn);
    EXPECT_EQ(tracer.opCount(op), 1u);

    bool found = false;
    for (const SpanRecord &r : tracer.ring().snapshot()) {
        if (r.kind == SpanKind::Op && r.scope == t.id().value) {
            found = true;
            EXPECT_EQ(r.name,
                      static_cast<std::uint16_t>(t.error()));
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(TracingTest, DisabledTracerRecordsNothing)
{
    TracerConfig cfg;
    cfg.enabled = false;
    SpanTracer tracer(cfg);
    srv->attachTracer(&tracer);
    Task t = runOp(cloneFullReq());
    ASSERT_TRUE(t.succeeded());

    EXPECT_EQ(tracer.ring().totalRecorded(), 0u);
    std::size_t op = static_cast<std::size_t>(OpType::CloneFull);
    EXPECT_EQ(tracer.opCount(op), 0u);
}

TEST_F(TracingTest, DetachStopsRecording)
{
    SpanTracer tracer;
    srv->attachTracer(&tracer);
    srv->attachTracer(nullptr);
    EXPECT_EQ(srv->tracer(), nullptr);
    Task t = runOp(cloneFullReq());
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(tracer.ring().totalRecorded(), 0u);
}

TEST_F(TracingTest, TracingDoesNotPerturbTheSimulation)
{
    // Identical seed and op sequence with and without a tracer must
    // produce identical task latencies and event counts: recording
    // reads the clock but never schedules, allocates RNG draws, or
    // otherwise back-reacts on the simulation.
    Task plain = runOp(cloneFullReq());
    std::uint64_t plain_events = sim->eventsProcessed();
    SimTime plain_end = sim->now();

    build({});
    SpanTracer tracer;
    srv->attachTracer(&tracer);
    Task traced = runOp(cloneFullReq());
    EXPECT_GT(tracer.ring().totalRecorded(), 0u);

    EXPECT_EQ(traced.latency(), plain.latency());
    EXPECT_EQ(sim->eventsProcessed(), plain_events);
    EXPECT_EQ(sim->now(), plain_end);
}

} // namespace
} // namespace vcp
