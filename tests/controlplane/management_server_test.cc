/**
 * @file
 * Pipeline-level behaviour of the management server: phase
 * accounting, admission limits, lock serialization, statistics,
 * observers, and task retention.
 */

#include "cp_fixture.hh"

#include "sim/logging.hh"

namespace vcp {
namespace {

using ServerTest = ControlPlaneFixture;

TEST_F(ServerTest, PhaseTimesSumToLatency)
{
    VmId vm = makeVm(h0, ds0);
    Task t = powerOn(vm);
    SimDuration sum = 0;
    for (std::size_t p = 0; p < kNumTaskPhases; ++p)
        sum += t.phaseTime(static_cast<TaskPhase>(p));
    // Phases cover the full pipeline; allow tiny rounding slack.
    EXPECT_NEAR(static_cast<double>(sum),
                static_cast<double>(t.latency()),
                static_cast<double>(msec(1)));
    EXPECT_GT(t.phaseTime(TaskPhase::Api), 0);
    EXPECT_GT(t.phaseTime(TaskPhase::Db), 0);
    EXPECT_GT(t.phaseTime(TaskPhase::HostAgent), 0);
    EXPECT_GT(t.phaseTime(TaskPhase::Finalize), 0);
}

TEST_F(ServerTest, CountersTrackOutcomes)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    powerOn(vm); // fails: already on
    EXPECT_EQ(srv->opsSubmitted(), 2u);
    EXPECT_EQ(srv->opsCompleted(), 1u);
    EXPECT_EQ(srv->opsFailed(), 1u);
    EXPECT_EQ(stats->counter("cp.ops.completed").value(), 1u);
    EXPECT_EQ(stats->counter("cp.ops.failed").value(), 1u);
    EXPECT_EQ(stats->counter("cp.errors.invalid-state").value(), 1u);
    EXPECT_EQ(srv->latencyHistogram(OpType::PowerOn).count(), 2u);
}

TEST_F(ServerTest, TaskRecordsRetainedByDefault)
{
    VmId vm = makeVm(h0, ds0);
    TaskId id = srv->submit([&] {
        OpRequest req;
        req.type = OpType::PowerOn;
        req.vm = vm;
        return req;
    }());
    sim->run();
    ASSERT_TRUE(srv->hasTask(id));
    EXPECT_TRUE(srv->task(id).succeeded());
}

TEST_F(ServerTest, TaskRecordsPurgedWhenDisabled)
{
    ManagementServerConfig cfg;
    cfg.retain_finished_tasks = false;
    build(cfg);
    VmId vm = makeVm(h0, ds0);
    OpRequest req;
    req.type = OpType::PowerOn;
    req.vm = vm;
    TaskId id = srv->submit(req);
    sim->run();
    EXPECT_FALSE(srv->hasTask(id));
}

TEST_F(ServerTest, UnknownTaskLookupPanics)
{
    EXPECT_THROW(srv->task(TaskId(777)), PanicError);
}

TEST_F(ServerTest, TaskObserverSeesEveryCompletion)
{
    int observed = 0;
    srv->setTaskObserver([&](const Task &) { ++observed; });
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    powerOn(vm); // failure is observed too
    EXPECT_EQ(observed, 2);
}

TEST_F(ServerTest, DispatchWidthBoundsConcurrency)
{
    ManagementServerConfig cfg;
    cfg.dispatch_width = 2;
    build(cfg);
    // Submit many power-ons; the scheduler must never run more than
    // two at once.
    std::vector<VmId> vms;
    for (int i = 0; i < 8; ++i)
        vms.push_back(makeVm(i % 2 ? h0 : h1, ds0, gib(1)));
    int max_in_flight = 0;
    for (VmId vm : vms) {
        OpRequest req;
        req.type = OpType::PowerOn;
        req.vm = vm;
        srv->submit(req);
    }
    // Probe in-flight at every millisecond.
    for (int t = 1; t < 60000; t += 1) {
        sim->schedule(msec(t), [&] {
            max_in_flight =
                std::max(max_in_flight, srv->scheduler().inFlight());
        });
    }
    sim->run();
    EXPECT_LE(max_in_flight, 2);
    EXPECT_EQ(srv->opsCompleted(), 8u);
}

TEST_F(ServerTest, ExclusiveVmLockSerializesOpsOnSameVm)
{
    VmId vm = makeVm(h0, ds0);
    // Submit a power-off one second into the power-on's execution
    // (the power-on holds the VM lock through its multi-second host
    // phase).  The power-off must wait for the lock, then see
    // PoweredOn and succeed.
    OpRequest on;
    on.type = OpType::PowerOn;
    on.vm = vm;
    OpRequest off;
    off.type = OpType::PowerOff;
    off.vm = vm;
    int done = 0;
    srv->submit(on, [&](const Task &t) {
        EXPECT_TRUE(t.succeeded());
        ++done;
    });
    sim->schedule(seconds(1), [&, off] {
        srv->submit(off, [&](const Task &t) {
            EXPECT_TRUE(t.succeeded());
            EXPECT_GT(t.phaseTime(TaskPhase::Locks), 0);
            ++done;
        });
    });
    sim->run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOff);
}

TEST_F(ServerTest, ConcurrentClonesFromOneTemplateShareReadLock)
{
    // Multiple concurrent linked clones from one template must all
    // succeed (shared source lock), not serialize into failures.
    int ok = 0;
    for (int i = 0; i < 6; ++i) {
        OpRequest req;
        req.type = OpType::CloneLinked;
        req.vm = tmpl;
        req.host = (i % 2) ? h0 : h1;
        req.datastore = ds0;
        req.base_disk = base;
        srv->submit(req, [&](const Task &t) {
            if (t.succeeded())
                ++ok;
        });
    }
    sim->run();
    EXPECT_EQ(ok, 6);
    EXPECT_EQ(inv->disk(base).ref_count, 6);
}

TEST_F(ServerTest, HostAgentSlotsBoundPerHostConcurrency)
{
    ManagementServerConfig cfg;
    cfg.agent.op_slots = 1;
    build(cfg);
    // Two clones on the same host serialize on the single agent
    // slot; on different hosts they overlap.
    auto run_pair = [&](HostId a, HostId b) {
        SimTime start = sim->now();
        int pending = 2;
        SimTime finish = 0;
        for (HostId h : {a, b}) {
            OpRequest req;
            req.type = OpType::CloneLinked;
            req.vm = tmpl;
            req.host = h;
            req.datastore = ds0;
            req.base_disk = base;
            srv->submit(req, [&](const Task &t) {
                EXPECT_TRUE(t.succeeded());
                if (--pending == 0)
                    finish = sim->now();
            });
        }
        sim->run();
        return finish - start;
    };
    SimDuration same_host = run_pair(h0, h0);
    SimDuration diff_host = run_pair(h0, h1);
    EXPECT_GT(same_host, diff_host + seconds(1));
}

TEST_F(ServerTest, DatastoreSlotsBoundDataOpsPerDatastore)
{
    ManagementServerConfig cfg;
    cfg.datastore_slots = 1;
    build(cfg);
    // Two full clones to the same datastore serialize on its slot
    // even though they run on different hosts.
    SimTime finish = 0;
    int pending = 2;
    for (HostId h : {h0, h1}) {
        OpRequest req;
        req.type = OpType::CloneFull;
        req.vm = tmpl;
        req.host = h;
        req.datastore = ds1;
        srv->submit(req, [&](const Task &t) {
            EXPECT_TRUE(t.succeeded());
            if (--pending == 0)
                finish = sim->now();
        });
    }
    sim->run();
    // Each copy is 4 GiB over a 1.25 GB/s fabric (~3.4 s); strictly
    // serialized they take > 6.8 s + host work.
    EXPECT_GT(finish, seconds(7));
}

TEST_F(ServerTest, FailureRollbackReleasesLocks)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    powerOn(vm); // fails
    // Locks fully released afterwards.
    EXPECT_EQ(srv->lockManager().holders(lockKey(vm)), 0);
    EXPECT_EQ(srv->lockManager().holders(lockKey(h0)), 0);
    // And a later op works fine.
    OpRequest off;
    off.type = OpType::PowerOff;
    off.vm = vm;
    EXPECT_TRUE(runOp(off).succeeded());
}

TEST_F(ServerTest, BytesMovedAccumulatesAcrossOps)
{
    OpRequest full;
    full.type = OpType::CloneFull;
    full.vm = tmpl;
    full.host = h0;
    full.datastore = ds0;
    runOp(full);
    runOp(full);
    EXPECT_EQ(srv->bytesMoved(), 2 * gib(4));
    EXPECT_EQ(stats->counter("cp.bytes_moved").value(),
              static_cast<std::uint64_t>(2 * gib(4)));
}

TEST_F(ServerTest, PhaseSummariesPopulated)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    EXPECT_EQ(
        stats->summary("cp.phase_us.power-on.host-agent").count(),
        1u);
    EXPECT_GT(stats->summary("cp.phase_us.power-on.db").mean(), 0.0);
}

TEST_F(ServerTest, QueuePhaseGrowsUnderOverload)
{
    ManagementServerConfig cfg;
    cfg.dispatch_width = 1;
    build(cfg);
    std::vector<VmId> vms;
    for (int i = 0; i < 4; ++i)
        vms.push_back(makeVm(h0, ds0, gib(1)));
    SimDuration last_queue = 0;
    int done = 0;
    for (VmId vm : vms) {
        OpRequest req;
        req.type = OpType::PowerOn;
        req.vm = vm;
        srv->submit(req, [&](const Task &t) {
            last_queue = t.phaseTime(TaskPhase::Queue);
            ++done;
        });
    }
    sim->run();
    EXPECT_EQ(done, 4);
    // The last task queued behind three ~2.5 s ops.
    EXPECT_GT(last_queue, seconds(4));
}

} // namespace
} // namespace vcp
