/**
 * @file
 * Shared fixture for control-plane tests: a two-host, two-datastore
 * inventory with a golden-master template, plus helpers to make VMs
 * and run ops synchronously.
 */

#ifndef VCP_TESTS_CP_FIXTURE_HH
#define VCP_TESTS_CP_FIXTURE_HH

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "controlplane/management_server.hh"

namespace vcp {

class ControlPlaneFixture : public ::testing::Test
{
  protected:
    ControlPlaneFixture() { build({}); }

    /** (Re)build the stack with a specific server configuration. */
    void
    build(const ManagementServerConfig &cfg)
    {
        srv.reset();
        net.reset();
        inv.reset();
        stats = std::make_unique<StatRegistry>();
        sim = std::make_unique<Simulator>(1234);
        inv = std::make_unique<Inventory>(*sim);
        net = std::make_unique<Network>(*sim, NetworkConfig{});
        srv = std::make_unique<ManagementServer>(*sim, *inv, *net,
                                                 *stats, cfg);

        DatastoreConfig dc;
        dc.capacity = gib(512);
        dc.copy_bandwidth = 100.0 * 1024 * 1024; // 100 MiB/s
        dc.name = "ds0";
        ds0 = inv->addDatastore(dc);
        dc.name = "ds1";
        ds1 = inv->addDatastore(dc);

        HostConfig hc;
        hc.cores = 16;
        hc.memory = gib(64);
        hc.name = "h0";
        h0 = inv->addHost(hc);
        hc.name = "h1";
        h1 = inv->addHost(hc);
        for (HostId h : {h0, h1}) {
            inv->connectHostToDatastore(h, ds0);
            inv->connectHostToDatastore(h, ds1);
        }

        // Golden master: 8 GiB disk, 4 GiB allocated, on ds0.
        VmConfig vc;
        vc.name = "template";
        vc.vcpus = 2;
        vc.memory = gib(4);
        vc.is_template = true;
        tmpl = inv->createVm(vc);
        DiskConfig bdc;
        bdc.kind = DiskKind::Flat;
        bdc.datastore = ds0;
        bdc.capacity = gib(8);
        bdc.initial_allocation = gib(4);
        bdc.owner = tmpl;
        base = inv->createDisk(bdc);
        inv->vm(tmpl).disks.push_back(base);
    }

    /** Create a powered-off VM registered on @p host with one disk. */
    VmId
    makeVm(HostId host, DatastoreId ds, Bytes disk = gib(4),
           int vcpus = 1, Bytes memory = gib(2))
    {
        VmConfig vc;
        vc.name = "vm";
        vc.vcpus = vcpus;
        vc.memory = memory;
        VmId vm = inv->createVm(vc);
        DiskConfig dc;
        dc.kind = DiskKind::Flat;
        dc.datastore = ds;
        dc.capacity = disk;
        dc.owner = vm;
        DiskId d = inv->createDisk(dc);
        EXPECT_TRUE(d.valid());
        inv->vm(vm).disks.push_back(d);
        inv->vm(vm).host = host;
        inv->host(host).registerVm(vm);
        return vm;
    }

    /** Submit an op and run the simulation until it completes. */
    Task
    runOp(const OpRequest &req)
    {
        std::optional<Task> result;
        srv->submit(req, [&](const Task &t) { result = t; });
        sim->run();
        EXPECT_TRUE(result.has_value());
        return *result;
    }

    /** Power a VM on synchronously (helper for test setup). */
    Task
    powerOn(VmId vm)
    {
        OpRequest req;
        req.type = OpType::PowerOn;
        req.vm = vm;
        return runOp(req);
    }

    std::unique_ptr<Simulator> sim;
    std::unique_ptr<StatRegistry> stats;
    std::unique_ptr<Inventory> inv;
    std::unique_ptr<Network> net;
    std::unique_ptr<ManagementServer> srv;

    HostId h0, h1;
    DatastoreId ds0, ds1;
    VmId tmpl;
    DiskId base;
};

} // namespace vcp

#endif // VCP_TESTS_CP_FIXTURE_HH
