/**
 * @file
 * Tests for the entity lock manager: compatibility, FIFO fairness,
 * multi-lock acquisition, and a randomized no-deadlock /
 * mutual-exclusion property.
 */

#include <gtest/gtest.h>

#include <vector>

#include "controlplane/lock_manager.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

LockRequest
xlock(VmId v)
{
    return {lockKey(v), LockMode::Exclusive};
}

LockRequest
slock(VmId v)
{
    return {lockKey(v), LockMode::Shared};
}

TEST(LockManagerTest, UncontendedExclusiveGrantsImmediately)
{
    Simulator sim;
    LockManager lm(sim);
    bool granted = false;
    lm.acquireAll({xlock(VmId(1))}, [&] { granted = true; });
    EXPECT_TRUE(granted);
    EXPECT_EQ(lm.holders(lockKey(VmId(1))), 1);
    lm.releaseAll({xlock(VmId(1))});
    EXPECT_EQ(lm.holders(lockKey(VmId(1))), 0);
}

TEST(LockManagerTest, SharedLocksCoexist)
{
    Simulator sim;
    LockManager lm(sim);
    int granted = 0;
    lm.acquireAll({slock(VmId(1))}, [&] { ++granted; });
    lm.acquireAll({slock(VmId(1))}, [&] { ++granted; });
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(lm.holders(lockKey(VmId(1))), 2);
}

TEST(LockManagerTest, ExclusiveWaitsForShared)
{
    Simulator sim;
    LockManager lm(sim);
    bool x_granted = false;
    lm.acquireAll({slock(VmId(1))}, [] {});
    lm.acquireAll({xlock(VmId(1))}, [&] { x_granted = true; });
    EXPECT_FALSE(x_granted);
    EXPECT_EQ(lm.waiters(lockKey(VmId(1))), 1u);
    lm.releaseAll({slock(VmId(1))});
    // Grants are delivered through zero-delay events.
    sim.run();
    EXPECT_TRUE(x_granted);
}

TEST(LockManagerTest, SharedWaitsForExclusive)
{
    Simulator sim;
    LockManager lm(sim);
    bool s_granted = false;
    lm.acquireAll({xlock(VmId(1))}, [] {});
    lm.acquireAll({slock(VmId(1))}, [&] { s_granted = true; });
    EXPECT_FALSE(s_granted);
    lm.releaseAll({xlock(VmId(1))});
    sim.run();
    EXPECT_TRUE(s_granted);
}

TEST(LockManagerTest, FifoPreventsWriterStarvation)
{
    Simulator sim;
    LockManager lm(sim);
    std::vector<int> order;
    lm.acquireAll({slock(VmId(1))}, [&] { order.push_back(0); });
    lm.acquireAll({xlock(VmId(1))}, [&] { order.push_back(1); });
    // A later shared request must NOT jump the queued writer.
    lm.acquireAll({slock(VmId(1))}, [&] { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{0}));
    lm.releaseAll({slock(VmId(1))});
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    lm.releaseAll({xlock(VmId(1))});
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(LockManagerTest, BatchedSharedWakeup)
{
    Simulator sim;
    LockManager lm(sim);
    int granted = 0;
    lm.acquireAll({xlock(VmId(1))}, [] {});
    lm.acquireAll({slock(VmId(1))}, [&] { ++granted; });
    lm.acquireAll({slock(VmId(1))}, [&] { ++granted; });
    lm.releaseAll({xlock(VmId(1))});
    sim.run();
    // Both queued readers wake together.
    EXPECT_EQ(granted, 2);
}

TEST(LockManagerTest, MultiLockAcquiresAll)
{
    Simulator sim;
    LockManager lm(sim);
    bool granted = false;
    lm.acquireAll({xlock(VmId(1)), xlock(VmId(2)),
                   {lockKey(HostId(3)), LockMode::Shared}},
                  [&] { granted = true; });
    EXPECT_TRUE(granted);
    EXPECT_EQ(lm.holders(lockKey(VmId(1))), 1);
    EXPECT_EQ(lm.holders(lockKey(VmId(2))), 1);
    EXPECT_EQ(lm.holders(lockKey(HostId(3))), 1);
}

TEST(LockManagerTest, VmAndHostKeysAreDistinct)
{
    Simulator sim;
    LockManager lm(sim);
    int granted = 0;
    // Same numeric id, different entity kinds: no conflict.
    lm.acquireAll({xlock(VmId(5))}, [&] { ++granted; });
    lm.acquireAll({{lockKey(HostId(5)), LockMode::Exclusive}},
                  [&] { ++granted; });
    EXPECT_EQ(granted, 2);
}

TEST(LockManagerTest, OpposingOrderMultiLockNoDeadlock)
{
    Simulator sim;
    LockManager lm(sim);
    int granted = 0;
    // Two acquisitions naming the same keys in opposite orders.
    lm.acquireAll({xlock(VmId(1)), xlock(VmId(2))}, [&] {
        ++granted;
        sim.schedule(10, [&] {
            lm.releaseAll({xlock(VmId(1)), xlock(VmId(2))});
        });
    });
    lm.acquireAll({xlock(VmId(2)), xlock(VmId(1))},
                  [&] { ++granted; });
    sim.run();
    EXPECT_EQ(granted, 2);
}

TEST(LockManagerTest, ReleaseWithoutHoldPanics)
{
    Simulator sim;
    LockManager lm(sim);
    EXPECT_THROW(lm.releaseAll({xlock(VmId(9))}), PanicError);

    lm.acquireAll({slock(VmId(1))}, [] {});
    EXPECT_THROW(lm.releaseAll({xlock(VmId(1))}), PanicError);
}

TEST(LockManagerTest, WaitTimesRecorded)
{
    Simulator sim;
    LockManager lm(sim);
    lm.acquireAll({xlock(VmId(1))}, [] {});
    lm.acquireAll({xlock(VmId(1))}, [] {});
    sim.schedule(seconds(3),
                 [&] { lm.releaseAll({xlock(VmId(1))}); });
    sim.run();
    EXPECT_EQ(lm.grants(), 2u);
    EXPECT_DOUBLE_EQ(lm.waitTimes().max(),
                     static_cast<double>(seconds(3)));
}

/**
 * Property: under a random mix of multi-lock acquire/hold/release
 * cycles, every acquisition is eventually granted (no deadlock) and
 * exclusive holders are never concurrent with any other holder.
 */
class LockStressTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(LockStressTest, AllGrantedMutualExclusionHolds)
{
    Simulator sim(GetParam());
    LockManager lm(sim);
    Rng rng(GetParam() * 977 + 1);

    const int keys = 6;
    const int ops = 400;
    int granted = 0;
    std::vector<int> shared_held(keys, 0);
    std::vector<int> exclusive_held(keys, 0);

    for (int i = 0; i < ops; ++i) {
        // Random subset of keys with random modes (one per key).
        std::vector<LockRequest> reqs;
        for (int k = 0; k < keys; ++k) {
            if (rng.bernoulli(0.4)) {
                LockMode m = rng.bernoulli(0.3)
                    ? LockMode::Exclusive
                    : LockMode::Shared;
                reqs.push_back({lockKey(VmId(k)), m});
            }
        }
        if (reqs.empty())
            reqs.push_back({lockKey(VmId(0)), LockMode::Shared});
        SimDuration at = rng.uniformInt(0, seconds(10));
        SimDuration hold = rng.uniformInt(1, msec(500));
        sim.schedule(at, [&, reqs, hold] {
            lm.acquireAll(reqs, [&, reqs, hold] {
                ++granted;
                for (const auto &r : reqs) {
                    int k = static_cast<int>(r.key.id);
                    if (r.mode == LockMode::Exclusive) {
                        // Mutual exclusion invariant.
                        EXPECT_EQ(shared_held[k], 0);
                        EXPECT_EQ(exclusive_held[k], 0);
                        exclusive_held[k]++;
                    } else {
                        EXPECT_EQ(exclusive_held[k], 0);
                        shared_held[k]++;
                    }
                }
                sim.schedule(hold, [&, reqs] {
                    for (const auto &r : reqs) {
                        int k = static_cast<int>(r.key.id);
                        if (r.mode == LockMode::Exclusive)
                            exclusive_held[k]--;
                        else
                            shared_held[k]--;
                    }
                    lm.releaseAll(reqs);
                });
            });
        });
    }
    sim.run();
    EXPECT_EQ(granted, ops);
    for (int k = 0; k < keys; ++k) {
        EXPECT_EQ(lm.holders(lockKey(VmId(k))), 0);
        EXPECT_EQ(lm.waiters(lockKey(VmId(k))), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockStressTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 42u));

} // namespace
} // namespace vcp
