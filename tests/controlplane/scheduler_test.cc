/**
 * @file
 * Tests for the task dispatch scheduler: width enforcement and the
 * three ordering policies.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "controlplane/scheduler.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

/**
 * The scheduler borrows Task pointers (the management server owns the
 * records in its arena); here a per-test factory keeps them alive.
 */
struct TaskFactory
{
    Task *
    make(std::int64_t id, TenantId tenant = TenantId(),
         int priority = 0)
    {
        OpRequest req;
        req.type = OpType::PowerOn;
        req.tenant = tenant;
        req.priority = priority;
        owned.push_back(std::make_unique<Task>(TaskId(id), req));
        return owned.back().get();
    }

    std::vector<std::unique_ptr<Task>> owned;
};

TEST(SchedulerTest, DispatchesUpToWidth)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 2);
    int running = 0;
    for (int i = 0; i < 5; ++i)
        sched.enqueue(tf.make(i), [&] { ++running; });
    EXPECT_EQ(running, 2);
    EXPECT_EQ(sched.inFlight(), 2);
    EXPECT_EQ(sched.queueLength(), 3u);
}

TEST(SchedulerTest, CompletionDispatchesNext)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 1);
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        sched.enqueue(tf.make(i), [&order, i] { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<int>{0}));
    sched.onTaskDone();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    sched.onTaskDone();
    sched.onTaskDone();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(sched.inFlight(), 0);
}

TEST(SchedulerTest, OnTaskDoneWithNothingRunningPanics)
{
    Simulator sim;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 1);
    EXPECT_THROW(sched.onTaskDone(), PanicError);
}

TEST(SchedulerTest, ZeroWidthFatal)
{
    Simulator sim;
    EXPECT_THROW(TaskScheduler(sim, SchedPolicy::Fifo, 0),
                 FatalError);
}

TEST(SchedulerTest, PriorityOrdersByValueThenFifo)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Priority, 1);
    std::vector<int> order;
    // Occupy the slot so the rest queue up.
    sched.enqueue(tf.make(99), [] {});
    sched.enqueue(tf.make(0, TenantId(), 5),
                  [&] { order.push_back(0); });
    sched.enqueue(tf.make(1, TenantId(), 1),
                  [&] { order.push_back(1); });
    sched.enqueue(tf.make(2, TenantId(), 5),
                  [&] { order.push_back(2); });
    sched.enqueue(tf.make(3, TenantId(), 0),
                  [&] { order.push_back(3); });
    for (int i = 0; i < 5; ++i)
        sched.onTaskDone();
    EXPECT_EQ(order, (std::vector<int>{3, 1, 0, 2}));
}

TEST(SchedulerTest, FifoIgnoresPriority)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 1);
    std::vector<int> order;
    sched.enqueue(tf.make(99), [] {});
    sched.enqueue(tf.make(0, TenantId(), 9),
                  [&] { order.push_back(0); });
    sched.enqueue(tf.make(1, TenantId(), 0),
                  [&] { order.push_back(1); });
    sched.onTaskDone();
    sched.onTaskDone();
    sched.onTaskDone();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SchedulerTest, FairShareRoundRobinsAcrossTenants)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::FairShare, 1);
    std::vector<std::pair<int, int>> order; // (tenant, seq)
    sched.enqueue(tf.make(99), [] {});
    // Tenant 1 floods; tenant 2 submits one.
    for (int i = 0; i < 4; ++i) {
        sched.enqueue(tf.make(i, TenantId(1)),
                      [&order, i] { order.push_back({1, i}); });
    }
    sched.enqueue(tf.make(50, TenantId(2)),
                  [&order] { order.push_back({2, 0}); });
    for (int i = 0; i < 6; ++i)
        sched.onTaskDone();
    // Tenant 2's single task must not be last.
    ASSERT_EQ(order.size(), 5u);
    bool tenant2_seen_early = false;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        if (order[i].first == 2)
            tenant2_seen_early = true;
    }
    EXPECT_TRUE(tenant2_seen_early);
    // Within tenant 1, FIFO order is preserved.
    int last_seq = -1;
    for (auto &p : order) {
        if (p.first == 1) {
            EXPECT_GT(p.second, last_seq);
            last_seq = p.second;
        }
    }
}

TEST(SchedulerTest, QueueWaitsMeasured)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 1);
    Task *t0 = tf.make(0);
    Task *t1 = tf.make(1);
    sched.enqueue(t0, [] {});
    sched.enqueue(t1, [] {});
    sim.schedule(seconds(4), [&] { sched.onTaskDone(); });
    sim.run();
    EXPECT_DOUBLE_EQ(sched.queueWaits().max(),
                     static_cast<double>(seconds(4)));
    EXPECT_EQ(t1->phaseTime(TaskPhase::Queue), seconds(4));
    EXPECT_EQ(t0->phaseTime(TaskPhase::Queue), 0);
}

TEST(SchedulerTest, UtilizationReflectsOccupancy)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 2);
    sched.enqueue(tf.make(0), [] {});
    // One of two slots busy for 10 s.
    sim.schedule(seconds(10), [&] { sched.onTaskDone(); });
    sim.run();
    EXPECT_NEAR(sched.utilization(), 0.5, 1e-9);
}

TEST(SchedulerTest, DispatchCountAccumulates)
{
    Simulator sim;
    TaskFactory tf;
    TaskScheduler sched(sim, SchedPolicy::Fifo, 4);
    for (int i = 0; i < 7; ++i)
        sched.enqueue(tf.make(i), [] {});
    for (int i = 0; i < 4; ++i)
        sched.onTaskDone();
    EXPECT_EQ(sched.dispatched(), 7u);
}

} // namespace
} // namespace vcp
