/**
 * @file
 * Tests for the inventory-database model: intra-op serialization,
 * cross-op parallelism over the connection pool.
 */

#include <gtest/gtest.h>

#include "controlplane/database.hh"
#include "sim/logging.hh"

namespace vcp {
namespace {

class DatabaseTest : public ::testing::Test
{
  protected:
    DatabaseTest()
        : inv(sim), costs(makeCfg(), Rng(3)),
          db(sim, inv, costs, DatabaseConfig{2})
    {}

    static CostModelConfig
    makeCfg()
    {
        CostModelConfig cfg;
        cfg.db_txn_mean = msec(10);
        cfg.db_txn_cv = 1e-6; // effectively deterministic
        cfg.db_scaling = DbScaling::Constant;
        return cfg;
    }

    Simulator sim;
    Inventory inv;
    OpCostModel costs;
    InventoryDatabase db;
};

TEST_F(DatabaseTest, ZeroTxnsCompletesSynchronously)
{
    bool done = false;
    db.runTxns(0, [&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_EQ(db.txnsCommitted(), 0u);
}

TEST_F(DatabaseTest, NegativeTxnsPanics)
{
    EXPECT_THROW(db.runTxns(-1, [] {}), PanicError);
}

TEST_F(DatabaseTest, TxnsWithinOpAreSerialized)
{
    SimTime done_at = -1;
    db.runTxns(5, [&] { done_at = sim.now(); });
    sim.run();
    // 5 sequential ~10 ms txns ~ 50 ms.
    EXPECT_NEAR(toMsec(done_at), 50.0, 1.0);
    EXPECT_EQ(db.txnsCommitted(), 5u);
}

TEST_F(DatabaseTest, OpsShareTheConnectionPool)
{
    SimTime a = -1, b = -1, c = -1;
    db.runTxns(2, [&] { a = sim.now(); });
    db.runTxns(2, [&] { b = sim.now(); });
    db.runTxns(2, [&] { c = sim.now(); });
    sim.run();
    // Two connections, FIFO across ops: A1+B1 run first; C1 jumps
    // in ahead of the ops' second transactions, so A ends at ~20 ms
    // and B and C at ~30 ms (total 6 txns / 2 connections = 30 ms,
    // work-conserving).
    EXPECT_NEAR(toMsec(a), 20.0, 1.5);
    EXPECT_NEAR(toMsec(b), 30.0, 1.5);
    EXPECT_NEAR(toMsec(c), 30.0, 1.5);
    EXPECT_EQ(db.txnsCommitted(), 6u);
}

TEST_F(DatabaseTest, InventorySizeCountsVmsAndHosts)
{
    EXPECT_EQ(db.inventorySize(), 0u);
    HostConfig hc;
    hc.name = "h";
    hc.memory = gib(8);
    inv.addHost(hc);
    VmConfig vc;
    vc.name = "v";
    inv.createVm(vc);
    inv.createVm(vc);
    EXPECT_EQ(db.inventorySize(), 3u);
}

TEST_F(DatabaseTest, UtilizationReflectsLoad)
{
    db.runTxns(4, [] {}); // one op: serial, uses 1 of 2 connections
    sim.run();
    EXPECT_NEAR(db.center().utilization(), 0.5, 0.05);
}

} // namespace
} // namespace vcp
