/**
 * @file
 * Tests for the operation cost model: defaults, sampling, and the
 * three database scaling laws.
 */

#include <gtest/gtest.h>

#include "controlplane/cost_model.hh"
#include "sim/logging.hh"
#include "sim/summary.hh"

namespace vcp {
namespace {

OpCostModel
makeModel(CostModelConfig cfg = {})
{
    return OpCostModel(cfg, Rng(9));
}

TEST(CostModelTest, DefaultsCoverEveryOp)
{
    CostModelConfig cfg;
    for (std::size_t i = 0; i < kNumOpTypes; ++i) {
        const OpCost &c = cfg.ops[i];
        EXPECT_GT(c.api_mean, 0) << opTypeName(static_cast<OpType>(i));
        EXPECT_GT(c.host_mean, 0);
        EXPECT_GE(c.db_txns, 1);
        EXPECT_GE(c.finalize_txns, 1);
    }
}

TEST(CostModelTest, LinkedCloneMovesNoDataFullCloneDoes)
{
    OpCostModel m = makeModel();
    EXPECT_FALSE(m.movesData(OpType::CloneLinked));
    EXPECT_TRUE(m.movesData(OpType::CloneFull));
    EXPECT_TRUE(m.movesData(OpType::Relocate));
    EXPECT_FALSE(m.movesData(OpType::PowerOn));
}

TEST(CostModelTest, SamplesArePositiveAndNearMean)
{
    OpCostModel m = makeModel();
    SummaryStats api, host;
    for (int i = 0; i < 20000; ++i) {
        api.add(static_cast<double>(m.sampleApi(OpType::CloneLinked)));
        host.add(
            static_cast<double>(m.sampleHost(OpType::CloneLinked)));
    }
    EXPECT_GT(api.min(), 0.0);
    EXPECT_GT(host.min(), 0.0);
    CostModelConfig cfg;
    const OpCost &c =
        cfg.ops[static_cast<std::size_t>(OpType::CloneLinked)];
    EXPECT_NEAR(api.mean(), static_cast<double>(c.api_mean),
                0.05 * static_cast<double>(c.api_mean));
    EXPECT_NEAR(host.mean(), static_cast<double>(c.host_mean),
                0.05 * static_cast<double>(c.host_mean));
}

TEST(CostModelTest, ConstantScalingIsFlat)
{
    CostModelConfig cfg;
    cfg.db_scaling = DbScaling::Constant;
    OpCostModel m = makeModel(cfg);
    EXPECT_DOUBLE_EQ(m.dbScaleFactor(10), 1.0);
    EXPECT_DOUBLE_EQ(m.dbScaleFactor(1000000), 1.0);
}

TEST(CostModelTest, LogScalingGrowsPerDecade)
{
    CostModelConfig cfg;
    cfg.db_scaling = DbScaling::Logarithmic;
    cfg.db_scale_coeff = 0.5;
    cfg.db_scale_base = 1000;
    OpCostModel m = makeModel(cfg);
    EXPECT_DOUBLE_EQ(m.dbScaleFactor(1000), 1.0);
    EXPECT_DOUBLE_EQ(m.dbScaleFactor(100), 1.0); // below base: flat
    EXPECT_NEAR(m.dbScaleFactor(10000), 1.5, 1e-9);
    EXPECT_NEAR(m.dbScaleFactor(100000), 2.0, 1e-9);
}

TEST(CostModelTest, LinearScalingGrowsProportionally)
{
    CostModelConfig cfg;
    cfg.db_scaling = DbScaling::Linear;
    cfg.db_scale_coeff = 1.0;
    cfg.db_scale_base = 1000;
    OpCostModel m = makeModel(cfg);
    EXPECT_DOUBLE_EQ(m.dbScaleFactor(1000), 1.0);
    EXPECT_NEAR(m.dbScaleFactor(2000), 2.0, 1e-9);
    EXPECT_NEAR(m.dbScaleFactor(4000), 4.0, 1e-9);
}

TEST(CostModelTest, DbTxnSamplingScalesWithInventory)
{
    CostModelConfig cfg;
    cfg.db_scaling = DbScaling::Linear;
    cfg.db_scale_coeff = 1.0;
    cfg.db_scale_base = 1000;
    OpCostModel m = makeModel(cfg);
    SummaryStats small, large;
    for (int i = 0; i < 20000; ++i) {
        small.add(static_cast<double>(m.sampleDbTxn(1000)));
        large.add(static_cast<double>(m.sampleDbTxn(3000)));
    }
    EXPECT_NEAR(large.mean() / small.mean(), 3.0, 0.15);
}

TEST(CostModelTest, LinkedDeltaAllocationFraction)
{
    CostModelConfig cfg;
    cfg.linked_delta_fraction = 0.02;
    OpCostModel m = makeModel(cfg);
    EXPECT_EQ(m.linkedDeltaAllocation(gib(10)),
              static_cast<Bytes>(gib(10) * 0.02));
}

TEST(CostModelTest, InvalidConfigFatal)
{
    CostModelConfig cfg;
    cfg.db_txn_mean = 0;
    EXPECT_THROW(makeModel(cfg), FatalError);

    cfg = CostModelConfig();
    cfg.linked_delta_fraction = 1.5;
    EXPECT_THROW(makeModel(cfg), FatalError);
}

TEST(CostModelTest, DbScalingNames)
{
    EXPECT_STREQ(dbScalingName(DbScaling::Constant), "constant");
    EXPECT_STREQ(dbScalingName(DbScaling::Logarithmic),
                 "logarithmic");
    EXPECT_STREQ(dbScalingName(DbScaling::Linear), "linear");
}

TEST(OpTypesTest, NamesRoundTrip)
{
    for (std::size_t i = 0; i < kNumOpTypes; ++i) {
        OpType t = static_cast<OpType>(i);
        EXPECT_EQ(opTypeFromName(opTypeName(t)), t);
    }
    EXPECT_EQ(opTypeFromName("bogus"), OpType::NumOpTypes);
}

TEST(OpTypesTest, EveryOpHasACategory)
{
    for (std::size_t i = 0; i < kNumOpTypes; ++i) {
        OpType t = static_cast<OpType>(i);
        OpCategory c = opCategory(t);
        EXPECT_LT(static_cast<std::size_t>(c), kNumOpCategories);
        EXPECT_STRNE(opCategoryName(c), "unknown");
    }
}

TEST(OpTypesTest, CloneOpsAreProvisioning)
{
    EXPECT_EQ(opCategory(OpType::CloneFull),
              OpCategory::Provisioning);
    EXPECT_EQ(opCategory(OpType::CloneLinked),
              OpCategory::Provisioning);
    EXPECT_EQ(opCategory(OpType::PowerOn), OpCategory::Power);
    EXPECT_EQ(opCategory(OpType::Migrate), OpCategory::Mobility);
    EXPECT_EQ(opCategory(OpType::ReplicateBaseDisk),
              OpCategory::Infrastructure);
}

} // namespace
} // namespace vcp
