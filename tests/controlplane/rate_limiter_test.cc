/**
 * @file
 * Tests for the per-tenant rate limiter, task cancellation, and the
 * background database load.
 */

#include "cp_fixture.hh"

#include "sim/logging.hh"

namespace vcp {
namespace {

TEST(RateLimiterTest, DisabledAdmitsEverything)
{
    Simulator sim;
    TenantRateLimiter rl(sim, RateLimitConfig{});
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_EQ(rl.rejections(), 0u);
}

TEST(RateLimiterTest, BurstThenRejects)
{
    Simulator sim;
    RateLimitConfig cfg;
    cfg.enabled = true;
    cfg.ops_per_second = 1.0;
    cfg.burst = 5.0;
    TenantRateLimiter rl(sim, cfg);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_FALSE(rl.tryAdmit(TenantId(1)));
    EXPECT_EQ(rl.rejections(), 1u);
}

TEST(RateLimiterTest, RefillsOverTime)
{
    Simulator sim;
    RateLimitConfig cfg;
    cfg.enabled = true;
    cfg.ops_per_second = 2.0;
    cfg.burst = 2.0;
    TenantRateLimiter rl(sim, cfg);
    EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_FALSE(rl.tryAdmit(TenantId(1)));
    sim.runUntil(seconds(1)); // refills 2 tokens
    EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_FALSE(rl.tryAdmit(TenantId(1)));
}

TEST(RateLimiterTest, TenantsAreIndependent)
{
    Simulator sim;
    RateLimitConfig cfg;
    cfg.enabled = true;
    cfg.ops_per_second = 1.0;
    cfg.burst = 1.0;
    TenantRateLimiter rl(sim, cfg);
    EXPECT_TRUE(rl.tryAdmit(TenantId(1)));
    EXPECT_FALSE(rl.tryAdmit(TenantId(1)));
    EXPECT_TRUE(rl.tryAdmit(TenantId(2)));
}

TEST(RateLimiterTest, InfrastructureOpsBypass)
{
    Simulator sim;
    RateLimitConfig cfg;
    cfg.enabled = true;
    cfg.ops_per_second = 0.001;
    cfg.burst = 1.0;
    TenantRateLimiter rl(sim, cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(rl.tryAdmit(TenantId())); // invalid = infra
}

TEST(RateLimiterTest, InvalidConfigFatal)
{
    Simulator sim;
    RateLimitConfig cfg;
    cfg.enabled = true;
    cfg.ops_per_second = 0.0;
    EXPECT_THROW(TenantRateLimiter(sim, cfg), FatalError);
}

class ServerLimitsTest : public ControlPlaneFixture
{};

TEST_F(ServerLimitsTest, RateLimitedSubmitFailsTask)
{
    ManagementServerConfig cfg;
    cfg.rate_limit.enabled = true;
    cfg.rate_limit.ops_per_second = 0.001;
    cfg.rate_limit.burst = 1.0;
    build(cfg);
    VmId vm = makeVm(h0, ds0);

    OpRequest req;
    req.type = OpType::PowerOn;
    req.vm = vm;
    req.tenant = TenantId(42);
    Task first = runOp(req);
    EXPECT_TRUE(first.succeeded());

    // Power it off out-of-band so the op itself would be valid.
    OpRequest off;
    off.type = OpType::PowerOff;
    off.vm = vm;
    off.tenant = TenantId(42);
    Task second = runOp(off);
    EXPECT_FALSE(second.succeeded());
    EXPECT_EQ(second.error(), TaskError::RateLimited);
    EXPECT_EQ(stats->counter("cp.errors.rate-limited").value(), 1u);
    // The VM is untouched.
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOn);
}

TEST_F(ServerLimitsTest, CancelPendingTaskFailsItCleanly)
{
    ManagementServerConfig cfg;
    cfg.dispatch_width = 1;
    build(cfg);
    VmId vm1 = makeVm(h0, ds0);
    VmId vm2 = makeVm(h0, ds0);

    OpRequest a;
    a.type = OpType::PowerOn;
    a.vm = vm1;
    srv->submit(a);

    OpRequest b;
    b.type = OpType::PowerOn;
    b.vm = vm2;
    std::optional<Task> second;
    TaskId second_id =
        srv->submit(b, [&](const Task &t) { second = t; });

    // Cancel while it waits behind the first task.
    sim->schedule(msec(200), [&] {
        EXPECT_TRUE(srv->cancel(second_id));
    });
    sim->run();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->error(), TaskError::Cancelled);
    // The cancelled op never touched the VM.
    EXPECT_EQ(inv->vm(vm2).powerState(), PowerState::PoweredOff);
    // No leaked locks or dispatch slots.
    EXPECT_EQ(srv->scheduler().inFlight(), 0);
    EXPECT_EQ(srv->lockManager().holders(lockKey(vm2)), 0);
}

TEST_F(ServerLimitsTest, CancelRunningTaskHasNoEffect)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest req;
    req.type = OpType::PowerOn;
    req.vm = vm;
    std::optional<Task> result;
    TaskId id = srv->submit(req, [&](const Task &t) { result = t; });
    // Request cancel after the task has certainly dispatched.
    sim->schedule(seconds(1), [&] { srv->cancel(id); });
    sim->run();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->succeeded());
}

TEST_F(ServerLimitsTest, CancelUnknownOrFinishedFails)
{
    EXPECT_FALSE(srv->cancel(TaskId(999)));
    VmId vm = makeVm(h0, ds0);
    Task t = powerOn(vm);
    EXPECT_FALSE(srv->cancel(t.id()));
}

TEST_F(ServerLimitsTest, BackgroundDbLoadRunsPeriodically)
{
    ManagementServerConfig cfg;
    cfg.background_db_period = minutes(1);
    cfg.background_db_txns = 10;
    build(cfg);
    sim->runUntil(minutes(5) + seconds(30));
    EXPECT_GE(stats->counter("cp.db.background_txns").value(), 40u);
    EXPECT_GE(srv->database().txnsCommitted(), 40u);
}

TEST_F(ServerLimitsTest, BackgroundDbLoadSlowsForegroundOps)
{
    // Heavy rollup load on one connection vs none.
    auto mean_power_on = [this](SimDuration period, int txns) {
        ManagementServerConfig cfg;
        cfg.db.connections = 1;
        cfg.background_db_period = period;
        cfg.background_db_txns = txns;
        build(cfg);
        VmId vm = makeVm(h0, ds0);
        for (int i = 0; i < 10; ++i) {
            OpRequest req;
            req.type = (i % 2 == 0) ? OpType::PowerOn
                                    : OpType::PowerOff;
            req.vm = vm;
            srv->submit(req);
            sim->runUntil(sim->now() + minutes(1));
        }
        return srv->latencyHistogram(OpType::PowerOn).mean();
    };
    double quiet = mean_power_on(0, 1);
    double busy = mean_power_on(seconds(10), 400);
    EXPECT_GT(busy, quiet * 1.2);
}

} // namespace
} // namespace vcp
