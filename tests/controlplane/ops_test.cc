/**
 * @file
 * Per-operation behaviour of the management server: every verb's
 * success path, validation failures, and state effects on the
 * inventory.
 */

#include "cp_fixture.hh"

namespace vcp {
namespace {

using OpsTest = ControlPlaneFixture;

TEST_F(OpsTest, PowerOnSucceedsAndCommitsResources)
{
    VmId vm = makeVm(h0, ds0);
    Task t = powerOn(vm);
    EXPECT_TRUE(t.succeeded());
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOn);
    EXPECT_EQ(inv->host(h0).committedVcpus(), 1);
    EXPECT_EQ(inv->host(h0).committedMemory(), gib(2));
    EXPECT_GT(t.latency(), 0);
}

TEST_F(OpsTest, PowerOnOfPoweredOnFails)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    Task t = powerOn(vm);
    EXPECT_FALSE(t.succeeded());
    EXPECT_EQ(t.error(), TaskError::InvalidState);
    // Resources were not double-committed.
    EXPECT_EQ(inv->host(h0).committedVcpus(), 1);
}

TEST_F(OpsTest, PowerOnOfMissingVmFails)
{
    OpRequest req;
    req.type = OpType::PowerOn;
    req.vm = VmId(424242);
    Task t = runOp(req);
    EXPECT_EQ(t.error(), TaskError::NoSuchEntity);
}

TEST_F(OpsTest, PowerOnUnregisteredVmFails)
{
    VmConfig vc;
    vc.name = "loose";
    VmId vm = inv->createVm(vc);
    OpRequest req;
    req.type = OpType::PowerOn;
    req.vm = vm;
    Task t = runOp(req);
    EXPECT_EQ(t.error(), TaskError::InvalidState);
}

TEST_F(OpsTest, PowerOnFailsWhenHostFull)
{
    // Fill the host: 16 cores x 4.0 overcommit = 64 vCPUs.
    VmId big = makeVm(h0, ds0, gib(1), 64, gib(1));
    powerOn(big);
    VmId vm = makeVm(h0, ds0);
    Task t = powerOn(vm);
    EXPECT_EQ(t.error(), TaskError::PlacementFailed);
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOff);
}

TEST_F(OpsTest, PowerOnMaintenanceHostFails)
{
    VmId vm = makeVm(h0, ds0);
    inv->host(h0).setMaintenance(true);
    Task t = powerOn(vm);
    EXPECT_EQ(t.error(), TaskError::HostUnavailable);
}

TEST_F(OpsTest, PowerOffReleasesResources)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::PowerOff;
    req.vm = vm;
    Task t = runOp(req);
    EXPECT_TRUE(t.succeeded());
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOff);
    EXPECT_EQ(inv->host(h0).committedVcpus(), 0);
}

TEST_F(OpsTest, SuspendReleasesResources)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Suspend;
    req.vm = vm;
    Task t = runOp(req);
    EXPECT_TRUE(t.succeeded());
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::Suspended);
    EXPECT_EQ(inv->host(h0).committedVcpus(), 0);
}

TEST_F(OpsTest, ResetKeepsVmOn)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Reset;
    req.vm = vm;
    Task t = runOp(req);
    EXPECT_TRUE(t.succeeded());
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOn);
    EXPECT_EQ(inv->host(h0).committedVcpus(), 1);
}

TEST_F(OpsTest, ResetOfPoweredOffFails)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest req;
    req.type = OpType::Reset;
    req.vm = vm;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, CreateVmMakesRegisteredVmWithDisk)
{
    OpRequest req;
    req.type = OpType::CreateVm;
    req.host = h0;
    req.datastore = ds0;
    req.name = "fresh";
    req.vcpus = 2;
    req.memory = gib(4);
    req.disk_size = gib(10);
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    VmId vm = t.resultVm();
    ASSERT_TRUE(vm.valid());
    EXPECT_EQ(inv->vm(vm).name, "fresh");
    EXPECT_EQ(inv->vm(vm).host, h0);
    EXPECT_TRUE(inv->host(h0).hasVm(vm));
    ASSERT_EQ(inv->vm(vm).disks.size(), 1u);
    EXPECT_EQ(inv->disk(inv->vm(vm).disks[0]).capacity, gib(10));
}

TEST_F(OpsTest, CreateVmOutOfSpaceRollsBack)
{
    std::size_t vms_before = inv->numVms();
    Bytes used_before = inv->datastore(ds0).used();
    OpRequest req;
    req.type = OpType::CreateVm;
    req.host = h0;
    req.datastore = ds0;
    req.disk_size = gib(100000);
    Task t = runOp(req);
    EXPECT_EQ(t.error(), TaskError::OutOfSpace);
    // Provisional VM record rolled back; no space leaked.
    EXPECT_EQ(inv->numVms(), vms_before);
    EXPECT_EQ(inv->datastore(ds0).used(), used_before);
    EXPECT_EQ(inv->host(h0).numVms(), 0u);
}

TEST_F(OpsTest, CreateVmUnreachableDatastoreFails)
{
    DatastoreConfig dc;
    dc.name = "island";
    dc.capacity = gib(100);
    DatastoreId island = inv->addDatastore(dc);
    OpRequest req;
    req.type = OpType::CreateVm;
    req.host = h0;
    req.datastore = island;
    EXPECT_EQ(runOp(req).error(), TaskError::BadRequest);
}

TEST_F(OpsTest, CloneFullCopiesAllocatedBytes)
{
    OpRequest req;
    req.type = OpType::CloneFull;
    req.vm = tmpl;
    req.host = h0;
    req.datastore = ds0;
    req.name = "copy";
    Bytes moved_before = srv->bytesMoved();
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    // Template has 4 GiB allocated.
    EXPECT_EQ(srv->bytesMoved() - moved_before, gib(4));
    VmId vm = t.resultVm();
    const VirtualDisk &d = inv->disk(inv->vm(vm).disks[0]);
    EXPECT_EQ(d.kind, DiskKind::Flat);
    EXPECT_EQ(d.capacity, gib(8));
    // Shape inherited from the template.
    EXPECT_EQ(inv->vm(vm).vcpus, 2);
    EXPECT_EQ(inv->vm(vm).memory, gib(4));
    EXPECT_GT(t.phaseTime(TaskPhase::DataCopy), 0);
}

TEST_F(OpsTest, CloneFullCrossDatastoreUsesNetwork)
{
    OpRequest req;
    req.type = OpType::CloneFull;
    req.vm = tmpl;
    req.host = h0;
    req.datastore = ds1; // template disk lives on ds0
    req.name = "copy";
    Bytes fabric_before = net->fabric().bytesCompleted();
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(net->fabric().bytesCompleted() - fabric_before, gib(4));
}

TEST_F(OpsTest, CloneLinkedMovesNoDataAndChains)
{
    OpRequest req;
    req.type = OpType::CloneLinked;
    req.vm = tmpl;
    req.host = h0;
    req.datastore = ds0;
    req.base_disk = base;
    req.name = "lc";
    Bytes moved_before = srv->bytesMoved();
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(srv->bytesMoved(), moved_before); // zero data
    VmId vm = t.resultVm();
    const VirtualDisk &d = inv->disk(inv->vm(vm).disks[0]);
    EXPECT_EQ(d.kind, DiskKind::LinkedCloneDelta);
    EXPECT_EQ(d.parent, base);
    EXPECT_EQ(d.chain_depth, 2);
    EXPECT_EQ(inv->disk(base).ref_count, 1);
    EXPECT_EQ(t.phaseTime(TaskPhase::DataCopy), 0);
}

TEST_F(OpsTest, CloneLinkedIsMuchFasterThanFull)
{
    OpRequest full;
    full.type = OpType::CloneFull;
    full.vm = tmpl;
    full.host = h0;
    full.datastore = ds0;
    Task tf = runOp(full);

    OpRequest linked;
    linked.type = OpType::CloneLinked;
    linked.vm = tmpl;
    linked.host = h1;
    linked.datastore = ds0;
    linked.base_disk = base;
    Task tl = runOp(linked);

    ASSERT_TRUE(tf.succeeded());
    ASSERT_TRUE(tl.succeeded());
    // 4 GiB at 100 MiB/s is ~41 s of copy; linked is a few seconds.
    EXPECT_GT(tf.latency(), 4 * tl.latency());
}

TEST_F(OpsTest, CloneLinkedBaseOnWrongDatastoreFails)
{
    OpRequest req;
    req.type = OpType::CloneLinked;
    req.vm = tmpl;
    req.host = h0;
    req.datastore = ds1; // base lives on ds0
    req.base_disk = base;
    EXPECT_EQ(runOp(req).error(), TaskError::BadRequest);
}

TEST_F(OpsTest, CloneLinkedWithoutBaseFails)
{
    OpRequest req;
    req.type = OpType::CloneLinked;
    req.vm = tmpl;
    req.host = h0;
    req.datastore = ds0;
    EXPECT_EQ(runOp(req).error(), TaskError::BadRequest);
}

TEST_F(OpsTest, DestroyRemovesVmAndFreesSpace)
{
    VmId vm = makeVm(h0, ds0, gib(6));
    Bytes used = inv->datastore(ds0).used();
    OpRequest req;
    req.type = OpType::Destroy;
    req.vm = vm;
    Task t = runOp(req);
    EXPECT_TRUE(t.succeeded());
    EXPECT_FALSE(inv->hasVm(vm));
    EXPECT_FALSE(inv->host(h0).hasVm(vm));
    EXPECT_EQ(inv->datastore(ds0).used(), used - gib(6));
}

TEST_F(OpsTest, DestroyPoweredOnFails)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Destroy;
    req.vm = vm;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
    EXPECT_TRUE(inv->hasVm(vm));
}

TEST_F(OpsTest, DestroyBaseWithCloneRefsFails)
{
    // Linked-clone off the template, then try to destroy the
    // template.
    OpRequest clone;
    clone.type = OpType::CloneLinked;
    clone.vm = tmpl;
    clone.host = h0;
    clone.datastore = ds0;
    clone.base_disk = base;
    ASSERT_TRUE(runOp(clone).succeeded());

    OpRequest req;
    req.type = OpType::Destroy;
    req.vm = tmpl;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, UnregisterThenRegisterElsewhere)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest unreg;
    unreg.type = OpType::UnregisterVm;
    unreg.vm = vm;
    ASSERT_TRUE(runOp(unreg).succeeded());
    EXPECT_FALSE(inv->vm(vm).host.valid());
    EXPECT_FALSE(inv->host(h0).hasVm(vm));

    OpRequest reg;
    reg.type = OpType::RegisterVm;
    reg.vm = vm;
    reg.host = h1;
    ASSERT_TRUE(runOp(reg).succeeded());
    EXPECT_EQ(inv->vm(vm).host, h1);
    EXPECT_TRUE(inv->host(h1).hasVm(vm));
}

TEST_F(OpsTest, RegisterAlreadyRegisteredFails)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest reg;
    reg.type = OpType::RegisterVm;
    reg.vm = vm;
    reg.host = h1;
    EXPECT_EQ(runOp(reg).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, ReconfigurePoweredOffJustChangesShape)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest req;
    req.type = OpType::Reconfigure;
    req.vm = vm;
    req.vcpus = 8;
    req.memory = gib(16);
    ASSERT_TRUE(runOp(req).succeeded());
    EXPECT_EQ(inv->vm(vm).vcpus, 8);
    EXPECT_EQ(inv->vm(vm).memory, gib(16));
    EXPECT_EQ(inv->host(h0).committedVcpus(), 0);
}

TEST_F(OpsTest, ReconfigurePoweredOnAdjustsCommitment)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Reconfigure;
    req.vm = vm;
    req.vcpus = 4;
    req.memory = gib(8);
    ASSERT_TRUE(runOp(req).succeeded());
    EXPECT_EQ(inv->host(h0).committedVcpus(), 4);
    EXPECT_EQ(inv->host(h0).committedMemory(), gib(8));
}

TEST_F(OpsTest, ReconfigureBeyondHostCapacityFailsAndRestores)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Reconfigure;
    req.vm = vm;
    req.vcpus = 1000;
    req.memory = gib(2);
    EXPECT_EQ(runOp(req).error(), TaskError::PlacementFailed);
    // Old commitment restored, old shape kept.
    EXPECT_EQ(inv->host(h0).committedVcpus(), 1);
    EXPECT_EQ(inv->vm(vm).vcpus, 1);
}

TEST_F(OpsTest, SnapshotAppendsDeltaAndRemoveConsolidates)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest snap;
    snap.type = OpType::Snapshot;
    snap.vm = vm;
    ASSERT_TRUE(runOp(snap).succeeded());
    ASSERT_EQ(inv->vm(vm).disks.size(), 2u);
    DiskId delta = inv->vm(vm).disks.back();
    EXPECT_EQ(inv->disk(delta).kind, DiskKind::SnapshotDelta);
    EXPECT_EQ(inv->disk(delta).chain_depth, 2);

    Bytes moved_before = srv->bytesMoved();
    OpRequest rm;
    rm.type = OpType::RemoveSnapshot;
    rm.vm = vm;
    ASSERT_TRUE(runOp(rm).succeeded());
    EXPECT_EQ(inv->vm(vm).disks.size(), 1u);
    EXPECT_FALSE(inv->hasDisk(delta));
    // Consolidation moved the delta's allocated bytes.
    EXPECT_GT(srv->bytesMoved(), moved_before);
}

TEST_F(OpsTest, RemoveSnapshotWithoutSnapshotFails)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest rm;
    rm.type = OpType::RemoveSnapshot;
    rm.vm = vm;
    EXPECT_EQ(runOp(rm).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, RelocateMovesDisksAcrossDatastores)
{
    VmId vm = makeVm(h0, ds0, gib(6));
    Bytes ds0_used = inv->datastore(ds0).used();
    Bytes ds1_used = inv->datastore(ds1).used();
    OpRequest req;
    req.type = OpType::Relocate;
    req.vm = vm;
    req.datastore = ds1;
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(inv->disk(inv->vm(vm).disks[0]).datastore, ds1);
    EXPECT_EQ(inv->datastore(ds0).used(), ds0_used - gib(6));
    EXPECT_EQ(inv->datastore(ds1).used(), ds1_used + gib(6));
}

TEST_F(OpsTest, RelocatePoweredOnFails)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Relocate;
    req.vm = vm;
    req.datastore = ds1;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, RelocateLinkedCloneFails)
{
    OpRequest clone;
    clone.type = OpType::CloneLinked;
    clone.vm = tmpl;
    clone.host = h0;
    clone.datastore = ds0;
    clone.base_disk = base;
    Task ct = runOp(clone);
    ASSERT_TRUE(ct.succeeded());

    OpRequest req;
    req.type = OpType::Relocate;
    req.vm = ct.resultVm();
    req.datastore = ds1;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, RelocateOutOfSpaceRollsBackReservation)
{
    VmId vm = makeVm(h0, ds0, gib(6));
    // Fill ds1.
    ASSERT_TRUE(inv->datastore(ds1).reserve(
        inv->datastore(ds1).free() - gib(1)));
    Bytes ds1_used = inv->datastore(ds1).used();
    OpRequest req;
    req.type = OpType::Relocate;
    req.vm = vm;
    req.datastore = ds1;
    EXPECT_EQ(runOp(req).error(), TaskError::OutOfSpace);
    EXPECT_EQ(inv->datastore(ds1).used(), ds1_used);
    EXPECT_EQ(inv->disk(inv->vm(vm).disks[0]).datastore, ds0);
}

TEST_F(OpsTest, MigrateMovesPoweredOnVm)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Migrate;
    req.vm = vm;
    req.host = h1;
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(inv->vm(vm).host, h1);
    EXPECT_FALSE(inv->host(h0).hasVm(vm));
    EXPECT_TRUE(inv->host(h1).hasVm(vm));
    EXPECT_EQ(inv->host(h0).committedVcpus(), 0);
    EXPECT_EQ(inv->host(h1).committedVcpus(), 1);
    EXPECT_EQ(inv->vm(vm).powerState(), PowerState::PoweredOn);
    // Memory image crossed the fabric.
    EXPECT_GT(t.phaseTime(TaskPhase::DataCopy), 0);
}

TEST_F(OpsTest, MigratePoweredOffFails)
{
    VmId vm = makeVm(h0, ds0);
    OpRequest req;
    req.type = OpType::Migrate;
    req.vm = vm;
    req.host = h1;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, MigrateToSameHostFails)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest req;
    req.type = OpType::Migrate;
    req.vm = vm;
    req.host = h0;
    EXPECT_EQ(runOp(req).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, HostLifecycleRoundTrip)
{
    inv->host(h1).setConnected(false);
    OpRequest add;
    add.type = OpType::AddHost;
    add.host = h1;
    ASSERT_TRUE(runOp(add).succeeded());
    EXPECT_TRUE(inv->host(h1).connected());

    OpRequest maint;
    maint.type = OpType::EnterMaintenance;
    maint.host = h1;
    ASSERT_TRUE(runOp(maint).succeeded());
    EXPECT_TRUE(inv->host(h1).inMaintenance());

    OpRequest exit_m;
    exit_m.type = OpType::ExitMaintenance;
    exit_m.host = h1;
    ASSERT_TRUE(runOp(exit_m).succeeded());
    EXPECT_FALSE(inv->host(h1).inMaintenance());

    OpRequest rm;
    rm.type = OpType::RemoveHost;
    rm.host = h1;
    ASSERT_TRUE(runOp(rm).succeeded());
    EXPECT_FALSE(inv->host(h1).connected());
}

TEST_F(OpsTest, AddConnectedHostFails)
{
    OpRequest add;
    add.type = OpType::AddHost;
    add.host = h0;
    EXPECT_EQ(runOp(add).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, EnterMaintenanceWithPoweredOnVmFails)
{
    VmId vm = makeVm(h0, ds0);
    powerOn(vm);
    OpRequest maint;
    maint.type = OpType::EnterMaintenance;
    maint.host = h0;
    EXPECT_EQ(runOp(maint).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, RemoveHostWithVmsFails)
{
    makeVm(h0, ds0);
    OpRequest rm;
    rm.type = OpType::RemoveHost;
    rm.host = h0;
    EXPECT_EQ(runOp(rm).error(), TaskError::InvalidState);
}

TEST_F(OpsTest, ReplicateBaseDiskCreatesCopyOnTarget)
{
    OpRequest req;
    req.type = OpType::ReplicateBaseDisk;
    req.base_disk = base;
    req.datastore = ds1;
    req.host = h0;
    Bytes fabric_before = net->fabric().bytesCompleted();
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    DiskId copy = t.resultDisk();
    ASSERT_TRUE(copy.valid());
    EXPECT_EQ(inv->disk(copy).datastore, ds1);
    EXPECT_EQ(inv->disk(copy).kind, DiskKind::Flat);
    EXPECT_EQ(inv->disk(copy).capacity, gib(8));
    // The base's 4 GiB allocated crossed the fabric.
    EXPECT_EQ(net->fabric().bytesCompleted() - fabric_before, gib(4));
}

TEST_F(OpsTest, ReplicateToSameDatastoreUsesDatastorePipe)
{
    OpRequest req;
    req.type = OpType::ReplicateBaseDisk;
    req.base_disk = base;
    req.datastore = ds0; // base also lives on ds0
    req.host = h0;
    Bytes pipe_before =
        inv->datastore(ds0).copyPipe().bytesCompleted();
    Bytes fabric_before = net->fabric().bytesCompleted();
    Task t = runOp(req);
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(inv->disk(t.resultDisk()).datastore, ds0);
    EXPECT_EQ(
        inv->datastore(ds0).copyPipe().bytesCompleted() - pipe_before,
        gib(4));
    EXPECT_EQ(net->fabric().bytesCompleted(), fabric_before);
}

TEST_F(OpsTest, ConsolidateDiskDetachesFromBase)
{
    OpRequest clone;
    clone.type = OpType::CloneLinked;
    clone.vm = tmpl;
    clone.host = h0;
    clone.datastore = ds0;
    clone.base_disk = base;
    Task ct = runOp(clone);
    ASSERT_TRUE(ct.succeeded());
    DiskId delta = inv->vm(ct.resultVm()).disks[0];
    ASSERT_EQ(inv->disk(base).ref_count, 1);

    OpRequest con;
    con.type = OpType::ConsolidateDisk;
    con.base_disk = delta;
    con.host = h0;
    Task t = runOp(con);
    ASSERT_TRUE(t.succeeded());
    EXPECT_EQ(inv->disk(delta).kind, DiskKind::Flat);
    EXPECT_FALSE(inv->disk(delta).parent.valid());
    EXPECT_EQ(inv->disk(delta).chain_depth, 1);
    EXPECT_EQ(inv->disk(base).ref_count, 0);
    // The delta now also holds the base content.
    EXPECT_GT(inv->disk(delta).allocated, gib(4));
}

TEST_F(OpsTest, ConsolidateFlatDiskFails)
{
    OpRequest con;
    con.type = OpType::ConsolidateDisk;
    con.base_disk = base;
    con.host = h0;
    EXPECT_EQ(runOp(con).error(), TaskError::BadRequest);
}

} // namespace
} // namespace vcp
